"""Per-sample, per-engine verdict timelines.

This is the causal core of the simulator.  For every sample the fleet
builds a :class:`DetectionPlan`: for each engine, a (usually empty or
1-2 element) list of verdict *transitions* over simulated time.  The plan
encodes exactly the mechanisms the paper identifies as the sources of
label dynamics (Observation 7):

* **engine latency** — detectors of a fresh malicious sample acquire it at
  staggered onset times after first submission, so AV-Rank climbs;
* **engine update** — signature-channel engines only deliver a new verdict
  at their next signature-database update, so their flips co-occur with a
  visible version change (the ~60 % the paper measured), while cloud
  engines flip between updates (the other ~40 %);
* **engine activity** — independently of the plan, each engine times out
  per scan with probability ``1 - activity`` and reports *undetected*;
* **false-positive episodes** — benign samples are occasionally flagged by
  a few engines and later retracted, and flippy engines (high ``churn``)
  churn more, per file-type category (Figure 10's Arcabit-on-ELF);
* **label copying** — follower engines replicate their leader's timeline
  with high fidelity where their copy rule applies (Figure 11's groups).

Because onsets are monotone (0→1 once) and retractions only follow
detections that predate the observation window, an engine's *observed*
label sequence is monotone except for deliberately injected hazards —
reproducing the paper's surprising finding that 0→1→0 / 1→0→1 "hazard
flips" are vanishingly rare in organic scan data (§7.1.1).

All randomness is drawn from per-sample streams keyed by the scenario seed
and the sample hash, so a plan is a pure function of (scenario, sample).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.vt import clock
from repro.vt.engines import EngineFleet
from repro.vt.filetypes import CATEGORIES, FILE_TYPES, FileTypeProfile
from repro.vt.samples import Sample

Transitions = tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class BehaviorParams:
    """Fleet-wide behavioural tunables (DESIGN.md §4 calibration surface).

    Everything here is dimensionless or in days; scenario presets override
    individual fields to move headline statistics (stable/dynamic split,
    flip direction ratio, stabilisation timing) without touching code.
    """

    #: Mean extra detectors beyond 1 in low-mode plateaus (PUA-style).
    low_mode_mean_extra: float = 1.6
    #: Cap on low-mode plateau size.
    low_mode_cap: int = 8
    #: Beta concentration for plateau fraction draws (high mode).
    plateau_concentration: float = 4.0
    #: Beta concentration for initial-detection fraction draws.
    initial_concentration: float = 4.0
    #: Probability a *low-mode* (PUA-style, few-engine) sample is already
    #: known at first submission.  Low-mode malware circulates in old
    #: signature databases, so this is high — which is what keeps the
    #: gray fraction small at low thresholds (Figure 8).
    low_mode_known_prob: float = 0.40
    #: Minimum engines already detecting a fresh high-mode sample at its
    #: first scan (commodity malware is never submitted fully unseen);
    #: keeps dynamic trajectories from crossing low thresholds.
    initial_floor: int = 12
    #: Known malware was signatured this long before first submission.
    known_onset_min_days: float = 5.0
    known_onset_max_days: float = 400.0
    #: Initially-detected engines acquired the sample this recently.
    initial_onset_max_days: float = 30.0
    #: Probability an initially-detecting engine later retracts (scaled by
    #: the engine's churn); the source of organic 1->0 flips.
    retract_prob: float = 0.16
    #: Mean days until a retraction lands.
    retract_mean_days: float = 25.0
    #: Per-engine late-join intensity for non-detectors (scaled by churn).
    late_join_rate: float = 0.006
    #: Late joiners arrive uniformly within this horizon (days).
    late_join_max_days: float = 400.0
    #: Fraction of high-mode pending detectors that are slow learners,
    #: and how much their growth timescale stretches.  Slow learners make
    #: AV-Rank differences keep growing with the scan interval over the
    #: full 14-month window (Figure 7's Spearman correlation).
    slow_growth_frac: float = 0.35
    slow_growth_mult: float = 8.0
    #: Mean engines involved in a benign false-positive episode (beyond 1).
    benign_fp_extra_mean: float = 0.8
    benign_fp_cap: int = 4
    #: FP episodes start uniformly within this many days of first_seen.
    benign_fp_start_max_days: float = 30.0
    #: Mean FP episode duration (days).
    benign_fp_duration_days: float = 25.0
    #: Per-engine churn-driven FP intensity on benign samples.
    benign_churn_fp_rate: float = 0.003
    #: Share of verdict changes that signature engines deliver through
    #: their cloud/reputation channel, i.e. *between* visible database
    #: updates.  Drives the paper's finding that only ~60 % of flips
    #: co-occur with an engine update (§5.5 cause ii vs cause i).
    hybrid_cloud_frac: float = 0.30
    #: Probability of injecting one hazard dip (0->1->0) per sample; the
    #: paper found 9 hazards in 109 M reports, i.e. effectively zero.
    hazard_rate: float = 1e-6
    #: Probability a malicious sample has one *flapping* engine — a cloud
    #: verdict oscillating with day-scale dips for a few weeks.  Organic
    #: scan gaps (median ~1 week) alias the dips away almost entirely,
    #: while a daily-rescan protocol (Zhu et al.) captures every edge —
    #: the §7.1.1 disagreement, reproduced by the rescan-cadence ablation.
    flap_rate: float = 0.012
    #: Mean number of dips in a flapping episode.
    flap_dips_mean: float = 5.0

    def __post_init__(self) -> None:
        if self.retract_prob < 0 or self.late_join_rate < 0:
            raise ConfigError("behaviour rates must be non-negative")
        if self.hazard_rate < 0 or self.hazard_rate > 1:
            raise ConfigError("hazard_rate must be in [0,1]")


def _beta(rng: random.Random, mean: float, concentration: float) -> float:
    """Beta draw with the given mean; degenerate means short-circuit."""
    if mean <= 0.0:
        return 0.0
    if mean >= 1.0:
        return 1.0
    return rng.betavariate(mean * concentration, (1.0 - mean) * concentration)


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth Poisson sampler; fine for the small rates used here."""
    if lam <= 0.0:
        return 0
    threshold = math.exp(-lam)
    k = 0
    p = 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


@dataclass
class DetectionPlan:
    """Resolved verdict timelines for one sample across the fleet.

    ``transitions[engine_idx]`` is a time-ordered tuple of
    ``(timestamp, verdict)`` pairs; the verdict before the first pair is
    benign (0).  Engines absent from the mapping answer benign forever.
    ``scan_rng`` is the per-sample stream the service consumes for
    activity dropout, so a sample's scan sequence is deterministic.
    """

    transitions: dict[int, Transitions]
    scan_rng: random.Random = field(repr=False)
    #: Followers whose copy rule fired on this sample, mapped to their
    #: leader's index.  OEM engines share scanning infrastructure, so the
    #: service also correlates their timeout behaviour with the leader's —
    #: without this, independent per-engine timeouts would cap copier
    #: correlations far below the paper's 0.95-0.99 (Figure 11).
    copied: dict[int, int] = field(default_factory=dict)

    def label_at(self, engine_idx: int, timestamp: int) -> int:
        """Latent verdict (0/1) of an engine at ``timestamp``."""
        label = 0
        for when, verdict in self.transitions.get(engine_idx, ()):
            if timestamp >= when:
                label = verdict
            else:
                break
        return label

    def eventual_detectors(self) -> set[int]:
        """Engines whose final latent verdict is malicious."""
        return {
            idx
            for idx, trans in self.transitions.items()
            if trans and trans[-1][1] == 1
        }


class BehaviorContext:
    """Shared state for plan construction: fleet, params and weight caches.

    Per-category weight vectors (detection, churn, false-positive) are
    computed once; plan construction for millions of samples then only
    draws random numbers.
    """

    def __init__(self, fleet: EngineFleet, params: BehaviorParams, seed: int) -> None:
        self.fleet = fleet
        self.params = params
        self.seed = seed
        n = len(fleet)
        self.engine_indices = tuple(range(n))
        self.detection_weights: dict[str, list[float]] = {}
        self.mean_detection_weight: dict[str, float] = {}
        self.churn_weights: dict[str, list[float]] = {}
        self.churn_total: dict[str, float] = {}
        self.fp_weights: dict[str, list[float]] = {}
        for category in CATEGORIES:
            dw = fleet.detection_weights(category)
            positive = [w for w in dw if w > 0.05]
            self.detection_weights[category] = dw
            self.mean_detection_weight[category] = (
                sum(positive) / len(positive) if positive else 1.0
            )
            cw = [e.churn_for(category) for e in fleet.engines]
            self.churn_weights[category] = cw
            self.churn_total[category] = sum(cw)
            self.fp_weights[category] = [
                e.fp_proneness * e.affinity_for(category) for e in fleet.engines
            ]

    def plan_rng(self, sample: Sample) -> random.Random:
        return random.Random(f"{self.seed}:plan:{sample.sha256}")

    def scan_rng(self, sample: Sample) -> random.Random:
        return random.Random(f"{self.seed}:scan:{sample.sha256}")


def _aligned(
    ctx: BehaviorContext,
    engine_idx: int,
    raw_time: int,
    rng: random.Random,
) -> int:
    """Delivery time of a verdict change for the given engine.

    Cloud engines always deliver immediately; signature engines deliver
    at their next database update (the paper's engine-update flip cause)
    except for the hybrid share of changes that ride their cloud
    reputation channel.
    """
    if ctx.fleet.engines[engine_idx].cloud:
        return raw_time
    if rng.random() < ctx.params.hybrid_cloud_frac:
        return raw_time
    return ctx.fleet.next_update_after(engine_idx, raw_time)


def _select_low_mode_detectors(
    ctx: BehaviorContext, rng: random.Random, category: str
) -> set[int]:
    params = ctx.params
    count = 2 + min(int(rng.expovariate(1.0 / params.low_mode_mean_extra)),
                    params.low_mode_cap)
    weights = ctx.detection_weights[category]
    if not any(weights):
        return set()
    picks = set(rng.choices(ctx.engine_indices, weights=weights, k=count))
    # Weighted draws can collide; top up so even PUA-style samples keep at
    # least two detectors (single-detector samples would oscillate across
    # t=1 on every engine timeout, inflating the paper's low-t gray band).
    tries = 0
    while len(picks) < 2 and tries < 8:
        picks.update(rng.choices(ctx.engine_indices, weights=weights, k=1))
        tries += 1
    return picks


def _select_high_mode_detectors(
    ctx: BehaviorContext, rng: random.Random, category: str, plateau_frac: float
) -> set[int]:
    weights = ctx.detection_weights[category]
    mean_w = ctx.mean_detection_weight[category]
    detectors = set()
    for idx, weight in enumerate(weights):
        p = plateau_frac * weight / mean_w
        if p > 0 and rng.random() < p:
            detectors.add(idx)
    return detectors


def _malicious_transitions(
    ctx: BehaviorContext,
    rng: random.Random,
    sample: Sample,
    profile: FileTypeProfile,
) -> dict[int, list[tuple[int, int]]]:
    params = ctx.params
    category = profile.category
    first_seen = sample.first_seen
    low_mode = rng.random() < profile.plateau_low_weight
    # Known probability depends on the plateau mode: PUA-style low-mode
    # samples are almost always already signatured, while broad-coverage
    # campaigns are the ones engines chase after first submission.
    if low_mode:
        known = rng.random() < params.low_mode_known_prob
        detectors = sorted(_select_low_mode_detectors(ctx, rng, category))
    else:
        known = rng.random() < profile.known_prob
        frac = _beta(rng, profile.plateau_high_frac, params.plateau_concentration)
        detectors = sorted(_select_high_mode_detectors(ctx, rng, category, frac))

    # Split detectors into initially-known and late-arriving.  The count
    # of initial detectors is controlled directly (fraction of plateau
    # with a floor for high-mode samples) so fresh dynamic trajectories
    # start already moderately detected — the reason the paper's gray
    # fraction stays small at low thresholds (Figure 8).
    if known:
        n_initial = len(detectors)
    else:
        frac0 = _beta(rng, profile.initial_frac_mean,
                      params.initial_concentration)
        n_initial = round(frac0 * len(detectors))
        if low_mode:
            # Even a fresh PUA is typically caught by at least one engine
            # on arrival (keeps the paper's gray fraction small at t=1).
            n_initial = max(n_initial, 1)
        else:
            floor = (profile.initial_floor
                     if profile.initial_floor is not None
                     else params.initial_floor)
            n_initial = max(n_initial, floor + rng.randint(-3, 3))
        n_initial = min(n_initial, len(detectors))
    rng.shuffle(detectors)
    initial_set = set(detectors[:n_initial])

    transitions: dict[int, list[tuple[int, int]]] = {}
    for idx in detectors:
        engine = ctx.fleet.engines[idx]
        if known:
            onset = first_seen - clock.minutes(
                days=rng.uniform(params.known_onset_min_days,
                                 params.known_onset_max_days)
            )
        elif idx in initial_set:
            onset = first_seen - clock.minutes(
                days=rng.uniform(0.0, params.initial_onset_max_days)
            )
        else:
            # Low-mode stragglers are simple signatures and land quickly;
            # high-mode campaigns follow the type's growth timescale, with
            # a slow-learner minority stretching over months — the long
            # tail behind Figure 7's interval effect.
            scale = 0.4 if low_mode else 1.0
            if not low_mode and rng.random() < params.slow_growth_frac:
                scale *= params.slow_growth_mult
            raw = first_seen + clock.minutes(
                days=rng.expovariate(1.0 / (profile.growth_days * scale))
            )
            onset = _aligned(ctx, idx, raw, rng)
        entry = [(onset, 1)]
        # Retraction (the organic 1->0 channel) only for detections that
        # predate the window, keeping observed per-engine sequences
        # monotone — hazard flips stay as rare as the paper found them.
        churn = engine.churn_for(category) * profile.churn_scale
        if onset <= first_seen and rng.random() < params.retract_prob * churn:
            raw = first_seen + clock.minutes(
                days=rng.expovariate(1.0 / params.retract_mean_days)
            )
            entry.append((_aligned(ctx, idx, raw, rng), 0))
        transitions[idx] = entry

    # Late joiners outside the plateau set: churn-weighted Poisson thinning.
    lam = params.late_join_rate * ctx.churn_total[category] * profile.churn_scale
    for _ in range(_poisson(rng, lam)):
        idx = rng.choices(ctx.engine_indices,
                          weights=ctx.churn_weights[category], k=1)[0]
        if idx in transitions:
            continue
        raw = first_seen + clock.minutes(
            days=rng.uniform(0.0, params.late_join_max_days)
        )
        transitions[idx] = [(_aligned(ctx, idx, raw, rng), 1)]

    # Flapping channel: one engine's cloud verdict oscillates with
    # day-scale dips.  Only engines already detecting before first
    # submission flap (flapping is verdict-confidence churn, not onset).
    if transitions and rng.random() < params.flap_rate:
        flappable = [idx for idx, entry in transitions.items()
                     if entry[0][0] <= first_seen and len(entry) == 1]
        if flappable:
            idx = flappable[rng.randrange(len(flappable))]
            onset = transitions[idx][0][0]
            entry = [(onset, 1)]
            t = first_seen + clock.minutes(days=rng.uniform(1.0, 20.0))
            for _ in range(1 + _poisson(rng, params.flap_dips_mean)):
                dip_end = t + clock.minutes(days=rng.uniform(0.5, 2.5))
                entry.append((t, 0))
                entry.append((dip_end, 1))
                t = dip_end + clock.minutes(days=rng.uniform(2.0, 8.0))
            transitions[idx] = entry

    # Rare extra hazard injection (paper: 9 dips in 109 M reports).
    if transitions and rng.random() < params.hazard_rate:
        idx = min(transitions)
        onset = transitions[idx][0][0]
        dip_start = max(first_seen, onset) + clock.minutes(days=rng.uniform(1, 10))
        dip_end = dip_start + clock.minutes(days=rng.uniform(1, 5))
        transitions[idx] = [(onset, 1), (dip_start, 0), (dip_end, 1)]
    return transitions


def _benign_transitions(
    ctx: BehaviorContext,
    rng: random.Random,
    sample: Sample,
    profile: FileTypeProfile,
) -> dict[int, list[tuple[int, int]]]:
    params = ctx.params
    category = profile.category
    first_seen = sample.first_seen
    transitions: dict[int, list[tuple[int, int]]] = {}

    def add_episode(idx: int) -> None:
        start_raw = first_seen + clock.minutes(
            days=rng.uniform(0.0, params.benign_fp_start_max_days)
        )
        start = _aligned(ctx, idx, start_raw, rng)
        duration = clock.minutes(
            days=rng.expovariate(1.0 / params.benign_fp_duration_days)
        )
        end = _aligned(ctx, idx, start + duration, rng)
        if end <= start:
            end = start + clock.minutes(days=1)
        transitions[idx] = [(start, 1), (end, 0)]

    if rng.random() < profile.fp_episode_prob:
        count = 1 + min(int(rng.expovariate(1.0 / params.benign_fp_extra_mean))
                        if params.benign_fp_extra_mean > 0 else 0,
                        params.benign_fp_cap)
        weights = ctx.fp_weights[category]
        if any(weights):
            for idx in rng.choices(ctx.engine_indices, weights=weights, k=count):
                if idx not in transitions:
                    add_episode(idx)

    # Churn-driven engine-specific FPs (Figure 10's flippy engines).
    lam = (params.benign_churn_fp_rate * ctx.churn_total[category]
           * profile.churn_scale)
    for _ in range(_poisson(rng, lam)):
        idx = rng.choices(ctx.engine_indices,
                          weights=ctx.churn_weights[category], k=1)[0]
        if idx not in transitions:
            add_episode(idx)
    return transitions


def _apply_copy_rules(
    ctx: BehaviorContext,
    rng: random.Random,
    transitions: dict[int, list[tuple[int, int]]],
    file_type: str,
    category: str,
) -> dict[int, int]:
    """Overwrite follower timelines with their leader's where rules apply.

    Returns the followers whose rule fired, mapped to their leader index,
    so the service can also correlate their timeout behaviour.
    """
    copied: dict[int, int] = {}
    for idx in ctx.fleet.decision_order:
        engine = ctx.fleet.engines[idx]
        rule = engine.copies
        if rule is None or not rule.applies_to(file_type, category):
            continue
        if rng.random() >= rule.fidelity:
            continue  # follower keeps its independent behaviour
        leader_idx = ctx.fleet.index[rule.leader]
        copied[idx] = leader_idx
        leader_timeline = transitions.get(leader_idx)
        if leader_timeline is None:
            transitions.pop(idx, None)
        else:
            transitions[idx] = list(leader_timeline)
    return copied


def build_plan(sample: Sample, ctx: BehaviorContext) -> DetectionPlan:
    """Construct the full per-engine verdict plan for ``sample``.

    Pure function of (scenario seed, sample): calling it twice yields an
    identical plan.
    """
    profile = FILE_TYPES[sample.file_type]
    rng = ctx.plan_rng(sample)
    if sample.malicious:
        transitions = _malicious_transitions(ctx, rng, sample, profile)
    else:
        transitions = _benign_transitions(ctx, rng, sample, profile)
    copied = _apply_copy_rules(ctx, rng, transitions, sample.file_type,
                               profile.category)
    frozen = {
        idx: tuple(sorted(entries)) for idx, entries in transitions.items()
    }
    return DetectionPlan(transitions=frozen, scan_rng=ctx.scan_rng(sample),
                         copied=copied)
