"""Parallel experiment orchestration: fan out shards, merge the stores.

``run_parallel`` partitions the scenario into K sample shards
(:mod:`repro.parallel.sharding`), runs each shard's event loop in its own
forked worker process (:mod:`repro.parallel.worker`), and merges the
frozen shard stores with the block-level concatenation path in
:mod:`repro.store.merge`.  The result is bit-identical to a serial run:
per-report bytes are a pure function of ``(config, sample)`` and the
merge key ``(scan_time, global_sample_index)`` reproduces the serial
ingest order exactly, so the merged store's canonical digest equals the
serial store's for every worker count.

Falls back to in-process execution when the partition leaves a single
non-empty shard or when the platform cannot fork (the worker protocol is
fork-based; spawn would work but buys nothing on the platforms that lack
fork in practice, so the graceful path is simply the serial one).
"""

from __future__ import annotations

import multiprocessing

from repro.parallel.sharding import partition_samples
from repro.parallel.worker import ShardRun, _run_shard_task
from repro.store.cache import DEFAULT_CACHE_BYTES
from repro.store.merge import FrozenMonth, FrozenShard, MergeStats, concat_frozen
from repro.store.reportstore import ReportStore
from repro.synth.population import PopulationGenerator
from repro.synth.scenario import ScenarioConfig
from repro.vt.engines import EngineFleet, default_fleet


def fork_available() -> bool:
    """Whether this platform supports fork-based worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def merge_shard_runs(
    config: ScenarioConfig, runs: list[ShardRun], metrics=None
) -> tuple[ReportStore, MergeStats]:
    """Merge worker results into one sealed store in serial ingest order.

    The merge key shipped by workers is ``(scan_time, global index)``;
    the sample hash for the index is recomputed here (it is a pure
    function of ``(seed, index)``), which keeps the worker payloads free
    of 64-byte hash strings for every record.
    """
    generator = PopulationGenerator(config)
    shas = [generator.sha_for(i) for i in range(config.n_samples)]
    sources = []
    for run in sorted(runs, key=lambda r: r.shard_index):
        months = {}
        for month, sm in run.months.items():
            months[month] = FrozenMonth(
                blocks=sm.compressed_blocks(),
                report_count=sm.report_count,
                verbose_bytes=sm.verbose_bytes,
                encoded_bytes=sm.encoded_bytes,
                keys=sm.keys,
                shas=[shas[index] for _, index in sm.keys],
                scan_times=[when for when, _ in sm.keys],
            )
        sources.append(FrozenShard(months=months,
                                   sample_meta=run.sample_meta))
    cache_bytes = (config.store_cache_bytes
                   if config.store_cache_bytes is not None
                   else DEFAULT_CACHE_BYTES)
    return concat_frozen(sources, block_records=config.block_records,
                         cache_bytes=cache_bytes, metrics=metrics)


def run_parallel(
    config: ScenarioConfig,
    fleet: EngineFleet | None = None,
    workers: int = 2,
    metrics=None,
):
    """Run one scenario across ``workers`` processes; returns the data.

    The returned :class:`~repro.analysis.experiment.ExperimentData` has
    ``service=None`` — worker services die with their processes, and no
    analysis pipeline needs a live service (the CLI's load-from-store
    path already runs without one).  Callers that need the service (e.g.
    the snapshot-campaign comparison) run serially.

    With an enabled ``metrics`` registry each worker records into its
    own registry and ships a snapshot; the snapshots are folded into
    ``metrics`` in shard order and the merged store's whole-run gauges
    are published, so the final export is byte-identical to a serial
    run's (the metric side of the equivalence gate).
    """
    from repro.analysis.experiment import ExperimentData, run_experiment

    shards = [s for s in partition_samples(config.n_samples, workers)
              if s.size]
    if len(shards) <= 1 or not fork_available():
        return run_experiment(config, fleet=fleet, workers=1,
                              metrics=metrics)

    with_metrics = metrics is not None and metrics.enabled
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=len(shards)) as pool:
        runs = pool.map(
            _run_shard_task,
            [(config, shard, fleet, with_metrics) for shard in shards],
            chunksize=1)

    if with_metrics:
        for run in sorted(runs, key=lambda r: r.shard_index):
            metrics.merge(run.metrics)
    store, merge_stats = merge_shard_runs(config, runs, metrics=metrics)
    store.publish_metrics()
    return ExperimentData(
        config=config,
        fleet=fleet if fleet is not None else default_fleet(config.seed),
        service=None,
        store=store,
        events_executed=sum(run.events_executed for run in runs),
        workers=len(shards),
        merge_stats=merge_stats,
        metrics=metrics,
    )
