"""Process-backed executors: fork and spawn worker pools.

This module is the package's *only* sanctioned constructor of worker
processes (reprolint RPL007 carves out ``repro/parallel/executors/``):
every other module routes fan-out through
:func:`repro.parallel.runner.run_parallel`, which drives these pools via
the scheduler.

The design is a plain task-queue/result-queue pair rather than
``multiprocessing.Pool``: ``Pool.map`` hides worker death behind a hung
future, but the elastic scheduler needs to *observe* death (``reap``),
silence (missed heartbeats) and lateness (stolen ranges), and to inject
replacement workers mid-run (``spawn_worker``).  A shared task queue
also gives work-stealing for free — a worker that finishes early simply
pulls the next range.

Both start methods run the same module-level :func:`_worker_main` (spawn
requires an importable top-level target) and the same
:func:`~repro.parallel.executors.base.execute_task` body, so fork and
spawn differ only in process bring-up cost.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod

from repro.errors import ConfigError
from repro.parallel.executors.base import Executor, Message, ShardTask


def fork_available() -> bool:
    """Whether this platform supports fork-based worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def _worker_main(worker_id: int, tasks, results,
                 heartbeat_interval: float | None) -> None:
    """Worker process body: pull tasks until the ``None`` poison pill.

    Imported (not inherited) state only — this must be runnable under
    the spawn start method, where the child starts from a fresh
    interpreter and unpickles its arguments.

    An :class:`~repro.parallel.executors.base.InjectedCrash` kills the
    process with ``os._exit`` — but only after flushing the result
    queue's feeder thread.  Dying mid-write would leave a truncated
    frame in the pipe and wedge the driver's reader for every message
    after it (from any worker), turning one injected crash into a hung
    run.
    """
    import os

    from repro.parallel.executors.base import (
        CHAOS_EXIT_CODE,
        InjectedCrash,
        execute_task,
    )

    while True:
        task = tasks.get()
        if task is None:
            break
        try:
            execute_task(task, worker_id, results.put,
                         allow_process_faults=True,
                         heartbeat_interval=heartbeat_interval)
        except InjectedCrash:
            results.close()
            results.join_thread()
            os._exit(CHAOS_EXIT_CODE)


class ProcessExecutor(Executor):
    """A crash-observable pool of forked or spawned worker processes."""

    #: How long shutdown waits for a worker to honour its poison pill
    #: before terminating it.
    JOIN_TIMEOUT = 5.0

    def __init__(self, method: str,
                 heartbeat_interval: float | None = None) -> None:
        if method not in multiprocessing.get_all_start_methods():
            raise ConfigError(
                f"start method {method!r} unavailable on this platform "
                f"(have: {multiprocessing.get_all_start_methods()})")
        self.kind = method
        self._ctx = multiprocessing.get_context(method)
        self._heartbeat_interval = heartbeat_interval
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._procs: dict[int, object] = {}
        self._next_worker_id = 0
        self._stopped = False

    def start(self, workers: int) -> None:
        for _ in range(max(1, workers)):
            self.spawn_worker()

    def spawn_worker(self) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self._tasks, self._results,
                  self._heartbeat_interval),
            daemon=True,
        )
        proc.start()
        self._procs[worker_id] = proc
        return worker_id

    def submit(self, task: ShardTask) -> None:
        self._tasks.put(task)

    def poll(self, timeout: float) -> list[Message]:
        messages: list[Message] = []
        try:
            messages.append(self._results.get(timeout=timeout))
        except queue_mod.Empty:
            return messages
        while True:
            try:
                messages.append(self._results.get_nowait())
            except queue_mod.Empty:
                return messages

    def reap(self) -> list[tuple[int, int]]:
        dead = []
        for worker_id, proc in sorted(self._procs.items()):
            if proc.exitcode is not None:
                proc.join()
                dead.append((worker_id, proc.exitcode))
        for worker_id, _ in dead:
            del self._procs[worker_id]
        return dead

    def live_workers(self) -> list[int]:
        return sorted(self._procs)

    def shutdown(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except (ValueError, OSError):  # queue already closed/broken
                break
        for proc in self._procs.values():
            proc.join(timeout=self.JOIN_TIMEOUT)
        for proc in self._procs.values():
            if proc.exitcode is None:
                proc.terminate()
                proc.join(timeout=self.JOIN_TIMEOUT)
        self._procs.clear()
        for q in (self._tasks, self._results):
            q.close()
            # Don't block interpreter exit on unflushed queue buffers
            # (a stolen-range run can leave late results in flight).
            q.cancel_join_thread()
