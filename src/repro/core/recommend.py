"""Threshold recommendation from gray-fraction curves (§5.4, Obs. 6).

The paper turns Figure 8 into advice: thresholds where the gray fraction
stays under ~10 % yield labels that tolerate VT's dynamics (overall it
recommends t in 1-11 or 28-50; for PE files, 1-24).  This module extracts
those contiguous low-gray ranges from a computed category distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.categorize import CategoryCounts
from repro.errors import ConfigError


@dataclass(frozen=True)
class ThresholdRange:
    """A contiguous range of recommended thresholds, inclusive."""

    low: int
    high: int
    max_gray_fraction: float

    def __contains__(self, threshold: int) -> bool:
        return self.low <= threshold <= self.high

    def __str__(self) -> str:
        return f"{self.low}-{self.high}"


def recommend_threshold_ranges(
    distribution: Sequence[CategoryCounts],
    gray_limit: float = 0.10,
) -> list[ThresholdRange]:
    """Contiguous threshold ranges whose gray fraction stays under
    ``gray_limit`` (the paper's 10 % working bound)."""
    if not 0.0 < gray_limit < 1.0:
        raise ConfigError(f"gray_limit must be in (0,1), got {gray_limit}")
    ordered = sorted(distribution, key=lambda c: c.threshold)
    ranges: list[ThresholdRange] = []
    run: list[CategoryCounts] = []
    previous_t: int | None = None
    for counts in ordered:
        contiguous = previous_t is None or counts.threshold == previous_t + 1
        if counts.gray_fraction < gray_limit and contiguous or (
            counts.gray_fraction < gray_limit and not run
        ):
            run.append(counts)
        elif counts.gray_fraction < gray_limit:
            # Low-gray but not contiguous with the run: start a new one.
            ranges.append(_close(run))
            run = [counts]
        else:
            if run:
                ranges.append(_close(run))
                run = []
        previous_t = counts.threshold
    if run:
        ranges.append(_close(run))
    return ranges


def _close(run: list[CategoryCounts]) -> ThresholdRange:
    return ThresholdRange(
        low=run[0].threshold,
        high=run[-1].threshold,
        max_gray_fraction=max(c.gray_fraction for c in run),
    )


def best_range(ranges: Sequence[ThresholdRange]) -> ThresholdRange:
    """The widest recommended range (ties broken toward lower thresholds).

    Width is the practical criterion: a wide safe band means the exact
    threshold choice matters little.
    """
    if not ranges:
        raise ConfigError("no recommended ranges to choose from")
    return min(ranges, key=lambda r: (-(r.high - r.low), r.low))
