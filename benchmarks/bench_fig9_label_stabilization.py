"""Figure 9 / Observation 9: stabilisation of thresholded labels.

Paper: under thresholds t in {2,...,40}, 93.14-98.04 % of file labels
eventually stabilise; labels settle around the 2nd-3rd report on average
(9.4-10.6 days), later when two-scan samples are excluded; 91.09-92.31 %
of labels are stable after 30 days.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.rendering import render_fig9
from repro.analysis.stabilization import label_stabilization_profile

from conftest import run_once, say


def test_fig9_label_stabilization(benchmark, bench_data):
    profile = run_once(
        benchmark,
        partial(label_stabilization_profile, bench_data.dataset_s),
    )
    say()
    say(render_fig9(profile))

    lo, hi = profile.stabilized_fraction_range()
    assert lo > 0.85          # paper: 93.14 %
    assert hi <= 1.0

    lo30, _ = profile.within_30_days_range()
    assert lo30 > 0.70        # paper: 91.09 %

    for t, summary in profile.all_samples.items():
        if summary.n_stabilized:
            # Labels settle early: around the 2nd-3rd report.
            assert 1.5 <= summary.mean_scan_index <= 5.0, t

    # Excluding two-scan samples pushes stabilisation later.
    for t in profile.all_samples:
        full = profile.all_samples[t]
        trimmed = profile.exclude_two_scan[t]
        if full.n_stabilized and trimmed.n_stabilized:
            assert trimmed.mean_days >= full.mean_days * 0.8
