"""Deterministic executor fault plans: crash, hang, corrupt-payload.

The elastic executor (:mod:`repro.parallel.scheduler`) retries shard
ranges when workers crash, hang past their heartbeat deadline, or ship a
corrupted result payload.  This module describes those faults the same
way :class:`~repro.faults.plan.FaultPlan` describes delivery faults:
every decision is a pure function of ``(seed, shard key, attempt)`` —
hashed, never drawn from a shared RNG stream — so a chaos run injects
exactly the same crashes and hangs every time, on every executor, and
the chaos acceptance gate (chaos run converges to the fault-free serial
digest) is meaningful.

Fault kinds, in the order the worker applies them:

* **crash-before-result** — the worker dies (``os._exit``) immediately
  after claiming the shard, before any compute;
* **crash-mid-shard** — the worker computes the shard, then dies before
  the result ships (from the scheduler's view: work lost mid-flight);
* **hang-past-deadline** — the worker computes the shard, then goes
  silent for ``hang_seconds`` before shipping; the scheduler's heartbeat
  deadline fires first and the range is stolen by another worker (the
  late result is digest-checked and discarded);
* **corrupt-payload** — the shipped payload bytes are mangled after the
  honest digest was computed, so the scheduler's integrity check rejects
  the result and the shard is retried, never merged.

The in-process executor cannot kill or stall its own process, so it
translates crash and hang decisions into in-band retryable failures —
the scheduler's retry/steal accounting still exercises identically.

Attempts at or beyond ``max_faulty_attempts`` never fault, mirroring
``FaultPlan.max_consecutive_failures``: any retry budget deeper than the
faulty prefix is guaranteed to make progress.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ConfigError

_RATE_FIELDS = (
    "crash_before_result_rate",
    "crash_mid_shard_rate",
    "hang_rate",
    "corrupt_payload_rate",
)


def hashed_fraction(seed: int, *key: object) -> float:
    """A deterministic uniform draw in ``[0, 1)`` keyed on ``(seed, key)``.

    sha256-based rather than the crc32 draw the delivery-fault layer
    uses (:func:`repro.faults.plan.keyed_fraction`): executor keys are
    short, highly structured strings (``shard-007``), and crc32 — a
    linear code — is visibly non-uniform over them, which would make
    fault rates wildly inaccurate.  The executor probes this a handful
    of times per shard attempt, so the hash cost is irrelevant here.
    """
    token = f"{seed}|" + "|".join(str(k) for k in key)
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(2 ** 64)


def hashed_chance(seed: int, rate: float, *key: object) -> bool:
    """A deterministic Bernoulli draw keyed on ``(seed, key)``."""
    if rate <= 0.0:
        return False
    return hashed_fraction(seed, *key) < rate


@dataclass(frozen=True)
class ExecutorFaultPlan:
    """Everything the chaos layer may do to one parallel run's workers."""

    seed: int = 0
    #: Per-attempt probability the worker dies before computing a shard.
    crash_before_result_rate: float = 0.0
    #: Per-attempt probability the worker dies after computing the shard
    #: but before the result ships.
    crash_mid_shard_rate: float = 0.0
    #: Per-attempt probability the worker goes silent past the heartbeat
    #: deadline before shipping its (computed) result.
    hang_rate: float = 0.0
    #: How long a hanging worker stays silent.  Must exceed the
    #: scheduler's heartbeat deadline for the hang to be observable.
    hang_seconds: float = 2.0
    #: Per-attempt probability the shipped payload arrives bit-damaged.
    corrupt_payload_rate: float = 0.0
    #: Attempts at or beyond this index never fault: a retry budget
    #: deeper than this always converges.
    max_faulty_attempts: int = 1

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0,1], got {value}")
        if self.hang_seconds <= 0:
            raise ConfigError(
                f"hang_seconds must be > 0, got {self.hang_seconds}")
        if self.max_faulty_attempts < 1:
            raise ConfigError("max_faulty_attempts must be >= 1")

    @property
    def disabled(self) -> bool:
        """Whether this plan can never inject anything."""
        return all(getattr(self, name) == 0.0 for name in _RATE_FIELDS)

    # ------------------------------------------------------------------
    # Keyed decisions (pure functions of (seed, shard key, attempt))
    # ------------------------------------------------------------------

    def _fires(self, rate: float, kind: str, shard_key: str,
               attempt: int) -> bool:
        if attempt >= self.max_faulty_attempts:
            return False
        return hashed_chance(self.seed, rate, "exec", kind, shard_key,
                             attempt)

    def crashes_before_result(self, shard_key: str, attempt: int) -> bool:
        return self._fires(self.crash_before_result_rate, "crash_before",
                           shard_key, attempt)

    def crashes_mid_shard(self, shard_key: str, attempt: int) -> bool:
        return self._fires(self.crash_mid_shard_rate, "crash_mid",
                           shard_key, attempt)

    def hangs(self, shard_key: str, attempt: int) -> bool:
        return self._fires(self.hang_rate, "hang", shard_key, attempt)

    def corrupts_payload(self, shard_key: str, attempt: int) -> bool:
        return self._fires(self.corrupt_payload_rate, "corrupt",
                           shard_key, attempt)

    def corrupt_payload(self, payload: bytes, shard_key: str,
                        attempt: int) -> bytes:
        """Deterministically mangle one result payload.

        Flips one keyed byte (and truncates one keyed tail byte on a
        second draw), so the damage — like the decision to damage — is a
        pure function of ``(seed, shard key, attempt)``.
        """
        if not payload:
            return payload
        offset = int(hashed_fraction(self.seed, "exec", "corrupt_at",
                                     shard_key, attempt) * len(payload))
        offset = min(offset, len(payload) - 1)
        mangled = bytearray(payload)
        mangled[offset] ^= 0xFF
        if hashed_chance(self.seed, 0.5, "exec", "corrupt_trunc",
                         shard_key, attempt):
            mangled = mangled[:-1]
        return bytes(mangled)


def standard_executor_chaos_plan(seed: int = 0,
                                 hang_seconds: float = 2.0,
                                 ) -> ExecutorFaultPlan:
    """The reference executor chaos mix used by tests, CI smoke and the
    fault benchmark.

    Every fault kind fires with a steady per-shard-attempt probability;
    only attempt 0 may fault (``max_faulty_attempts=1``), so a scheduler
    with any retry budget ≥ 2 attempts converges, and chaos wall-clock
    stays bounded by one extra attempt per shard plus one hang window.
    """
    return ExecutorFaultPlan(
        seed=seed,
        crash_before_result_rate=0.15,
        crash_mid_shard_rate=0.10,
        hang_rate=0.10,
        hang_seconds=hang_seconds,
        corrupt_payload_rate=0.10,
        max_faulty_attempts=1,
    )
