"""Unit tests for the bytes-bounded block cache (repro.store.cache)."""

import pytest

from repro.store.cache import _RECORD_OVERHEAD, BlockCache, CacheStats


def _block(n_records: int, record_size: int = 100) -> list[bytes]:
    return [bytes(record_size) for _ in range(n_records)]


def _cost(n_records: int, record_size: int = 100) -> int:
    return n_records * (record_size + _RECORD_OVERHEAD)


class TestLookup:
    def test_miss_then_hit(self):
        cache = BlockCache(max_bytes=10_000)
        assert cache.get((0, 0)) is None
        cache.put((0, 0), _block(2))
        assert cache.get((0, 0)) == _block(2)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_contains_and_len(self):
        cache = BlockCache(max_bytes=10_000)
        cache.put((0, 0), _block(1))
        cache.put((3, 7), _block(1))
        assert (0, 0) in cache
        assert (1, 0) not in cache
        assert len(cache) == 2


class TestByteBounding:
    def test_eviction_is_by_bytes_not_entries(self):
        # Cap fits exactly two 2-record blocks; a third insert evicts
        # the least recently used one.
        cache = BlockCache(max_bytes=2 * _cost(2))
        cache.put((0, 0), _block(2))
        cache.put((0, 1), _block(2))
        cache.put((0, 2), _block(2))
        assert cache.evictions == 1
        assert (0, 0) not in cache
        assert (0, 1) in cache and (0, 2) in cache
        assert cache.bytes_resident <= cache.max_bytes

    def test_one_large_block_evicts_many_small(self):
        cache = BlockCache(max_bytes=_cost(8))
        for idx in range(4):
            cache.put((0, idx), _block(2))
        cache.put((0, 99), _block(6))
        assert (0, 99) in cache
        assert cache.bytes_resident <= cache.max_bytes
        assert cache.evictions >= 3

    def test_get_refreshes_recency(self):
        cache = BlockCache(max_bytes=2 * _cost(2))
        cache.put((0, 0), _block(2))
        cache.put((0, 1), _block(2))
        cache.get((0, 0))  # now (0, 1) is the LRU entry
        cache.put((0, 2), _block(2))
        assert (0, 0) in cache
        assert (0, 1) not in cache

    def test_oversized_block_not_admitted(self):
        cache = BlockCache(max_bytes=_cost(1))
        cache.put((0, 0), _block(5))
        assert len(cache) == 0
        assert cache.bytes_resident == 0

    def test_reput_replaces_without_double_counting(self):
        cache = BlockCache(max_bytes=10_000)
        cache.put((0, 0), _block(2))
        cache.put((0, 0), _block(3))
        assert cache.bytes_resident == _cost(3)
        assert len(cache) == 1

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            BlockCache(max_bytes=-1)


class TestInvalidation:
    def test_invalidate_one(self):
        cache = BlockCache(max_bytes=10_000)
        cache.put((0, 0), _block(1))
        assert cache.invalidate((0, 0))
        assert not cache.invalidate((0, 0))  # already gone
        assert cache.invalidations == 1
        assert cache.bytes_resident == 0

    def test_invalidate_month(self):
        cache = BlockCache(max_bytes=10_000)
        cache.put((0, 0), _block(1))
        cache.put((0, 1), _block(1))
        cache.put((5, 0), _block(1))
        assert cache.invalidate_month(0) == 2
        assert (5, 0) in cache
        assert len(cache) == 1

    def test_clear(self):
        cache = BlockCache(max_bytes=10_000)
        cache.put((0, 0), _block(1))
        cache.get((0, 0))
        cache.clear()
        assert len(cache) == 0
        assert cache.bytes_resident == 0
        assert cache.hits == 1  # counters survive


class TestHitRate:
    """The live cache's own ratio (not the CacheStats snapshot).

    Regression: publishing gauges off an idle or freshly-cleared cache
    must never divide by zero, and ``clear()`` resets residency only —
    the cumulative counters (and hence the lifetime ratio) survive.
    """

    def test_zero_lookups_is_zero_not_error(self):
        cache = BlockCache(max_bytes=10_000)
        assert cache.lookups == 0
        assert cache.hit_rate() == 0.0

    def test_ratio_over_traffic(self):
        cache = BlockCache(max_bytes=10_000)
        cache.get((0, 0))               # miss
        cache.put((0, 0), _block(1))
        cache.get((0, 0))               # hit
        cache.get((0, 0))               # hit
        assert cache.lookups == 3
        assert cache.hit_rate() == pytest.approx(2 / 3)

    def test_clear_resets_residency_not_counters(self):
        cache = BlockCache(max_bytes=10_000)
        cache.get((0, 0))               # miss
        cache.put((0, 0), _block(1))
        cache.get((0, 0))               # hit
        cache.clear()
        assert len(cache) == 0
        assert cache.bytes_resident == 0
        assert cache.lookups == 2
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_post_clear_lookups_keep_accumulating(self):
        cache = BlockCache(max_bytes=10_000)
        cache.put((0, 0), _block(1))
        cache.get((0, 0))               # hit
        cache.clear()
        cache.get((0, 0))               # miss (entry gone after clear)
        assert cache.lookups == 2
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_store_publishes_hit_rate_gauge_without_traffic(self):
        """End to end: a store that never served a lookup publishes
        hit_rate 0.0 (no ZeroDivisionError) on a live registry."""
        from repro.obs import MetricsRegistry
        from repro.store import ReportStore

        registry = MetricsRegistry()
        store = ReportStore(metrics=registry)
        store.publish_metrics()
        assert registry.gauge("store.cache.hit_rate").value == 0.0


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == pytest.approx(0.75)

    def test_cold_cache_hit_rate_is_zero(self):
        assert CacheStats().hit_rate == 0.0
