"""White/black/gray categorisation under a voting threshold (§5.4).

Threshold-based labelling marks a sample malicious when its AV-Rank is at
least *t*.  Because AV-Rank moves over time, the paper sorts samples into
three categories per threshold:

* **white** — every observed AV-Rank is below *t* (always labelled
  benign, whatever the scan date);
* **black** — every observed AV-Rank is at least *t* (always malicious);
* **gray** — the trajectory crosses *t*: the label depends on *when* the
  sample was scanned.

The fraction of gray samples as a function of *t* (Figure 8) is the
paper's measure of how well threshold labelling tolerates label dynamics.

Note on boundaries: the paper's prose defines white as "all the AV-Ranks
of the sample are less than t" while typesetting ``p_max <= t``; the two
conflict at ``p_max == t``, where the sample *would* be labelled malicious
(the labelling rule is ``rank >= t``).  We follow the semantics: white is
``p_max < t``, black is ``p_min >= t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.avrank import AVRankSeries
from repro.errors import ConfigError

WHITE = "white"
BLACK = "black"
GRAY = "gray"


def categorize(series: AVRankSeries, threshold: int) -> str:
    """The paper's three-way categorisation of one sample at ``threshold``."""
    if threshold < 1:
        raise ConfigError(f"threshold must be >= 1, got {threshold}")
    if series.p_max < threshold:
        return WHITE
    if series.p_min >= threshold:
        return BLACK
    return GRAY


@dataclass(frozen=True)
class CategoryCounts:
    """Category tallies at one threshold (one x-position of Figure 8)."""

    threshold: int
    white: int
    black: int
    gray: int

    @property
    def total(self) -> int:
        return self.white + self.black + self.gray

    @property
    def gray_fraction(self) -> float:
        return self.gray / self.total if self.total else 0.0

    @property
    def white_fraction(self) -> float:
        return self.white / self.total if self.total else 0.0

    @property
    def black_fraction(self) -> float:
        return self.black / self.total if self.total else 0.0


def category_distribution(
    series: Sequence[AVRankSeries],
    thresholds: Iterable[int],
) -> list[CategoryCounts]:
    """Category tallies across thresholds — the full Figure 8 curve.

    One pass over the samples: per sample only (p_min, p_max) matter, and
    each threshold is an interval test against them.
    """
    extremes = [(s.p_min, s.p_max) for s in series]
    out: list[CategoryCounts] = []
    for t in thresholds:
        if t < 1:
            raise ConfigError(f"threshold must be >= 1, got {t}")
        white = black = gray = 0
        for p_min, p_max in extremes:
            if p_max < t:
                white += 1
            elif p_min >= t:
                black += 1
            else:
                gray += 1
        out.append(CategoryCounts(t, white, black, gray))
    return out
