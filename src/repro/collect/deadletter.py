"""The dead-letter queue: payloads that failed validation, kept forever.

A record the collector cannot decode is never silently discarded — it is
appended here with the error and the poll minute, so an operator can
audit exactly what was lost and a later tool can attempt re-decoding.
Entries persist as JSON-lines (payload hex-encoded) when a path is
given; loading an existing file resumes the queue across restarts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator


@dataclass(frozen=True)
class DeadLetter:
    """One undecodable delivery."""

    minute: int
    error: str
    payload: bytes


class DeadLetterQueue:
    """Append-only queue of failed records, optionally file-backed."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._entries: list[DeadLetter] = []
        if self.path is not None and self.path.exists():
            self._entries = list(self._read(self.path))

    @staticmethod
    def _read(path: Path) -> Iterator[DeadLetter]:
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                doc = json.loads(line)
                yield DeadLetter(
                    minute=int(doc["minute"]),
                    error=str(doc["error"]),
                    payload=bytes.fromhex(doc["payload"]),
                )

    def add(self, payload: bytes, error: str, minute: int) -> DeadLetter:
        """Record one failed payload; appends to the backing file if any."""
        entry = DeadLetter(minute=minute, error=error, payload=bytes(payload))
        self._entries.append(entry)
        if self.path is not None:
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(json.dumps({
                    "minute": entry.minute,
                    "error": entry.error,
                    "payload": entry.payload.hex(),
                }, sort_keys=True) + "\n")
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DeadLetter]:
        return iter(self._entries)

    def entries(self) -> list[DeadLetter]:
        return list(self._entries)

    def errors_by_kind(self) -> dict[str, int]:
        """Histogram of dead letters by error message."""
        counts: dict[str, int] = {}
        for entry in self._entries:
            counts[entry.error] = counts.get(entry.error, 0) + 1
        return counts
