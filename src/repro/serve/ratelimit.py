"""Token-bucket quota enforcement for the serving layer.

The real service's free tier is a *dual* window — 4 requests/minute and
500 requests/day — so each tenant carries one token bucket per window
and a request must clear **all** of them.  Enforcement is
check-everything-then-consume: a request that would be refused by any
bucket consumes from none, so a burst that trips the minute window does
not silently drain the day quota.

Clock policy: this module is the serving layer's *sanctioned owner* of
wall-clock reads.  The determinism contract (reprolint RPL001) bans
``time.monotonic`` in library code because simulation results must not
depend on the host clock — but a rate limiter's entire job is to meter
real elapsed time, exactly like the span timers in
:mod:`repro.obs.timing`.  The clock is injected (tests drive a fake;
the default is the real monotonic clock), and ``repro/serve/ratelimit.py``
is carved out via the RPL001 :class:`~repro.lint.config.PathPolicy` —
a structural exclusion, not a per-line pragma, because the whole file is
the sanctioned surface.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.serve.auth import Tenant, TierLimits

#: Seconds per quota window.
MINUTE_SECONDS = 60.0
DAY_SECONDS = 86400.0

#: A clock: zero-arg callable returning monotonic seconds.
ClockFn = Callable[[], float]


def real_clock() -> float:
    """The default serving clock (host monotonic seconds)."""
    return time.monotonic()


@dataclass(frozen=True)
class RateDecision:
    """The limiter's verdict on one request."""

    allowed: bool
    #: Seconds until a retry could succeed (0.0 when allowed).  The HTTP
    #: layer ceils this into the ``Retry-After`` header.
    retry_after: float = 0.0

    @property
    def retry_after_seconds(self) -> int:
        """``retry_after`` as the integer HTTP header value (ceiled,
        at least 1 for a refusal so clients never busy-spin)."""
        if self.allowed:
            return 0
        return max(1, math.ceil(self.retry_after))


ALLOWED = RateDecision(allowed=True)


class TokenBucket:
    """One refilling quota window.

    Starts full (``capacity`` tokens); refills continuously at
    ``capacity / window_seconds`` tokens per second, capped at
    ``capacity``.  Continuous refill matches how the real service's
    per-minute limit behaves in practice (a 4/min key can fire every
    15 s indefinitely) and makes ``retry_after`` exact rather than
    "start of next window".
    """

    def __init__(self, capacity: int, window_seconds: float,
                 clock: ClockFn) -> None:
        self.capacity = float(capacity)
        self.refill_per_second = capacity / window_seconds
        self._clock = clock
        self._tokens = self.capacity
        self._updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.capacity,
                               self._tokens + elapsed * self.refill_per_second)
        self._updated = now

    def tokens(self, now: float) -> float:
        """Token count after refilling to ``now`` (no consumption).

        Every method takes the decision's single ``now`` explicitly
        rather than reading the clock itself: one admission decision
        must see one instant.  Separate clock reads per bucket (the old
        ``peek()``/``can_consume()``/``consume()`` surface) let time
        advance *between* the check and the consume, so a request could
        be admitted against a token that a fresh read then double-spent
        — the classic check-then-act race, merely narrowed by the lock.
        """
        self._refill(now)
        return self._tokens

    def take(self, now: float) -> None:
        """Take one token as of ``now``.  Callers must have checked
        ``tokens(now) >= 1`` at the *same* ``now`` first."""
        self._refill(now)
        self._tokens -= 1.0

    def seconds_until_token(self, now: float) -> float:
        """Time from ``now`` until one full token is available (0.0 if
        already)."""
        tokens = self.tokens(now)
        if tokens >= 1.0:
            return 0.0
        return (1.0 - tokens) / self.refill_per_second

    def peek(self) -> float:
        """Current token count on a fresh clock read (diagnostics)."""
        return self.tokens(self._clock())


class TenantLimiter:
    """Per-tenant dual-window rate limiting over the tier table.

    Thread-safe: the HTTP layer serves from a thread pool, and one lock
    covers bucket creation and the check-then-consume sequence so two
    threads cannot both spend the last token.
    """

    def __init__(self, clock: ClockFn | None = None) -> None:
        self._clock: ClockFn = clock if clock is not None else real_clock
        self._buckets: dict[str, list[TokenBucket]] = {}
        self._lock = threading.Lock()

    def _buckets_for(self, tenant: Tenant) -> list[TokenBucket]:
        buckets = self._buckets.get(tenant.key)
        if buckets is None:
            buckets = []
            tier: TierLimits = tenant.tier
            if tier.per_minute is not None:
                buckets.append(
                    TokenBucket(tier.per_minute, MINUTE_SECONDS, self._clock))
            if tier.per_day is not None:
                buckets.append(
                    TokenBucket(tier.per_day, DAY_SECONDS, self._clock))
            self._buckets[tenant.key] = buckets
        return buckets

    def check(self, tenant: Tenant) -> RateDecision:
        """Admit or refuse one request for ``tenant``.

        All of the tenant's windows are checked before any is consumed;
        on refusal ``retry_after`` is the *worst* (longest) wait over the
        refusing windows, since every window must admit the retry.

        The whole decision is atomic twice over: the lock serialises
        concurrent callers, and a single clock read (``now``) is
        threaded through every bucket operation, so the tokens checked
        are exactly the tokens consumed — refill cannot slip in between
        the check and the consume and mint an extra admission.  Under an
        8-thread hammer at an empty bucket, exactly ``capacity``
        requests are admitted (see ``tests/test_serve.py``).
        """
        with self._lock:
            buckets = self._buckets_for(tenant)
            if not buckets:
                return ALLOWED
            now = self._clock()
            waits = [b.seconds_until_token(now) for b in buckets
                     if b.tokens(now) < 1.0]
            if waits:
                return RateDecision(allowed=False, retry_after=max(waits))
            for bucket in buckets:
                bucket.take(now)
            return ALLOWED

    def remaining(self, tenant: Tenant) -> dict[str, float]:
        """Current token counts per window (diagnostics; ``{}`` when
        unlimited)."""
        with self._lock:
            buckets = self._buckets_for(tenant)
            names = []
            tier = tenant.tier
            if tier.per_minute is not None:
                names.append("minute")
            if tier.per_day is not None:
                names.append("day")
            return {name: bucket.peek()
                    for name, bucket in zip(names, buckets, strict=True)}
