#!/usr/bin/env python3
"""Data-driven engine selection (§7 + §8 recommendations).

The paper urges users to weight engines by measured reliability and to
treat correlated engines as a single opinion.  This example scores the
whole fleet from scan data, derives a trusted engine set, and compares
three labelling strategies against the simulator's hidden ground truth:

* naive threshold voting over all 70 engines;
* voting restricted to the reliability-selected trusted set;
* correlation-deduplicated weighted voting.

Run:  python examples/engine_selection.py
"""

from repro import dynamics_scenario, run_experiment
from repro.analysis.engines import engine_correlation, engine_stability
from repro.analysis.rendering import ascii_table, pct
from repro.core.aggregation import (
    ThresholdAggregator,
    TrustedEnginesAggregator,
    WeightedVoteAggregator,
)
from repro.core.reliability import score_engines, select_trusted

data = run_experiment(dynamics_scenario(n_samples=4_000, seed=17))

# ---------------------------------------------------------------------------
# 1. Score the fleet.
# ---------------------------------------------------------------------------
stability = engine_stability(data.store, data.engine_names)
correlation = engine_correlation(data.store, data.engine_names,
                                 file_types=())
scores = score_engines(data.store.iter_reports(), stability.flips,
                       correlation.overall)

ranked = sorted(scores, key=lambda s: s.composite(), reverse=True)
rows = [
    (s.engine, f"{s.flip_ratio:.2%}", f"{s.availability:.1%}",
     f"{s.coverage:.1%}", s.group_size, f"{s.composite():.3f}")
    for s in ranked[:12]
]
print(ascii_table(
    ["engine", "flip ratio", "availability", "coverage", "group",
     "composite"],
    rows,
))

trusted = select_trusted(scores, count=10)
print(f"\ntrusted set (one engine per correlation group first): "
      f"{', '.join(trusted)}")

# ---------------------------------------------------------------------------
# 2. Compare strategies against hidden ground truth.
# ---------------------------------------------------------------------------
naive = ThresholdAggregator(threshold=5)
trusted_vote = TrustedEnginesAggregator(trusted, data.engine_names,
                                        threshold=2)
dedup_vote = WeightedVoteAggregator.from_correlation_groups(
    correlation.overall.groups(), data.engine_names, threshold=5.0
)

strategies = {"naive t>=5": naive, "trusted 2/10": trusted_vote,
              "dedup w>=5": dedup_vote}
confusion = {name: [0, 0, 0, 0] for name in strategies}  # TP FP FN TN

for sha, reports in data.store.iter_sample_reports():
    truth = data.service.get_sample(sha).malicious
    final = reports[-1]
    for name, strategy in strategies.items():
        verdict = strategy.is_malicious(final)
        cell = (0 if truth and verdict else
                1 if not truth and verdict else
                2 if truth else 3)
        confusion[name][cell] += 1

print()
rows = []
for name, (tp, fp, fn, tn) in confusion.items():
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    rows.append((name, pct(precision), pct(recall), f"{f1:.3f}"))
print(ascii_table(["strategy", "precision", "recall", "F1"], rows))

print("\nNote: 'ground truth' here is the simulator's latent label —"
      "\nthe comparison shows how the strategies trade precision for"
      "\nrecall, not absolute real-world accuracy.")
