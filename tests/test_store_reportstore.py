"""Unit and integration tests for ReportStore (repro.store.reportstore)."""

import pytest

from repro.errors import CorruptRecordError, ShardClosedError, UnknownSampleError
from repro.store.reportstore import ReportStore
from repro.vt import clock

from conftest import make_report, make_sha


def _month_time(month: int, offset: int = 1000) -> int:
    return clock.MONTH_STARTS[month] + offset


@pytest.fixture()
def store():
    return ReportStore(block_records=4)


def _fill(store: ReportStore, n_samples: int = 3, scans_each: int = 3):
    reports = []
    for i in range(n_samples):
        sha = make_sha(f"s{i}")
        for k in range(scans_each):
            report = make_report(
                sha=sha,
                scan_time=_month_time(k, offset=100 * i + k),
                labels=[1, 0, 0, 0, 0],
                first_submission=0 if i % 2 == 0 else -50,
            )
            reports.append(report)
            store.ingest(report)
    return reports


class TestIngest:
    def test_counts(self, store):
        _fill(store)
        assert store.report_count == 9
        assert store.sample_count == 3

    def test_monthly_sharding(self, store):
        _fill(store, scans_each=3)
        assert sorted(store.shards) == [0, 1, 2]

    def test_fresh_sample_accounting(self, store):
        _fill(store, n_samples=4)
        assert store.fresh_sample_count == 2  # i = 0 and 2

    def test_ingest_batch_returns_count(self, store):
        batch = [make_report(sha=make_sha("b"), scan_time=10),
                 make_report(sha=make_sha("b"), scan_time=20)]
        assert store.ingest_batch(batch) == 2

    def test_closed_store_rejects_ingest(self, store):
        _fill(store)
        store.close()
        with pytest.raises(ShardClosedError):
            store.ingest(make_report())


class TestRetrieval:
    def test_contains(self, store):
        _fill(store)
        assert make_sha("s0") in store
        assert make_sha("ghost") not in store

    def test_reports_for_sorted_by_time(self, store):
        _fill(store)
        reports = store.reports_for(make_sha("s1"))
        assert len(reports) == 3
        times = [r.scan_time for r in reports]
        assert times == sorted(times)

    def test_reports_for_unknown_raises(self, store):
        with pytest.raises(UnknownSampleError):
            store.reports_for(make_sha("ghost"))

    def test_sample_metadata(self, store):
        _fill(store)
        assert store.sample_file_type(make_sha("s0")) == "Win32 EXE"
        assert store.sample_is_fresh(make_sha("s0"))
        assert not store.sample_is_fresh(make_sha("s1"))

    def test_metadata_unknown_raises(self, store):
        with pytest.raises(UnknownSampleError):
            store.sample_file_type(make_sha("ghost"))
        with pytest.raises(UnknownSampleError):
            store.report_count_of(make_sha("ghost"))

    def test_iter_reports_visits_everything(self, store):
        ingested = _fill(store)
        assert sorted(r.sha256 + str(r.scan_time)
                      for r in store.iter_reports()) == sorted(
            r.sha256 + str(r.scan_time) for r in ingested
        )

    def test_iter_sample_reports_groups(self, store):
        _fill(store)
        grouped = dict(store.iter_sample_reports())
        assert set(grouped) == {make_sha(f"s{i}") for i in range(3)}
        for reports in grouped.values():
            assert len(reports) == 3

    def test_report_count_of(self, store):
        _fill(store)
        assert store.report_count_of(make_sha("s2")) == 3

    def test_block_cache_consistency(self, store):
        # Read the same sample repeatedly; the block cache must not
        # corrupt results.
        _fill(store, n_samples=6, scans_each=2)
        first = store.reports_for(make_sha("s3"))
        for _ in range(10):
            assert store.reports_for(make_sha("s3")) == first


class TestStats:
    def test_table2_months(self, store):
        _fill(store)
        stats = store.stats()
        assert len(stats.months) == clock.COLLECTION_MONTHS
        assert stats.months[0].label == "05/2021"
        assert stats.total_reports == 9

    def test_compression_rate_positive(self, store):
        _fill(store, n_samples=10)
        store.close()
        assert store.stats().compression_rate > 1.0

    def test_fresh_fraction(self, store):
        _fill(store, n_samples=4)
        assert store.stats().fresh_fraction == pytest.approx(0.5)

    def test_empty_store_stats(self):
        stats = ReportStore().stats()
        assert stats.total_reports == 0
        assert stats.compression_rate == 0.0
        assert stats.fresh_fraction == 0.0


class TestPersistence:
    def test_save_load_round_trip(self, store, tmp_path):
        ingested = _fill(store, n_samples=5, scans_each=2)
        store.close()
        path = tmp_path / "reports.store"
        store.save(path)
        loaded = ReportStore.load(path)
        assert loaded.report_count == store.report_count
        assert loaded.sample_count == store.sample_count
        assert loaded.fresh_sample_count == store.fresh_sample_count
        for i in range(5):
            sha = make_sha(f"s{i}")
            assert loaded.reports_for(sha) == store.reports_for(sha)
        del ingested

    def test_loaded_store_is_sealed(self, store, tmp_path):
        _fill(store)
        path = tmp_path / "x.store"
        store.save(path)
        loaded = ReportStore.load(path)
        with pytest.raises(ShardClosedError):
            loaded.ingest(make_report())

    def test_load_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"this is not a store")
        with pytest.raises(CorruptRecordError):
            ReportStore.load(path)

    def test_save_preserves_accounting(self, store, tmp_path):
        _fill(store, n_samples=6)
        path = tmp_path / "acct.store"
        store.save(path)
        loaded = ReportStore.load(path)
        original = store.stats()
        reloaded = loaded.stats()
        assert reloaded.total_reports == original.total_reports
        assert reloaded.verbose_bytes == original.verbose_bytes
