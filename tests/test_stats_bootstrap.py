"""Tests for bootstrap confidence intervals (repro.stats.bootstrap)."""

import numpy as np
import pytest

from repro.errors import ConfigError, InsufficientDataError
from repro.stats.bootstrap import ConfidenceInterval, bootstrap_ci, fraction_ci


class TestBootstrapCI:
    def test_interval_brackets_estimate(self):
        ci = bootstrap_ci(list(range(100)), seed=1)
        assert ci.low <= ci.estimate <= ci.high

    def test_deterministic_given_seed(self):
        data = [1.0, 2.0, 5.0, 9.0] * 10
        a = bootstrap_ci(data, seed=3)
        b = bootstrap_ci(data, seed=3)
        assert (a.low, a.high) == (b.low, b.high)

    def test_wider_data_wider_interval(self):
        narrow = bootstrap_ci([10.0] * 30 + [10.5] * 30, seed=2)
        wide = bootstrap_ci([0.0] * 30 + [20.0] * 30, seed=2)
        assert wide.width > narrow.width

    def test_constant_data_zero_width(self):
        ci = bootstrap_ci([5.0] * 50, seed=4)
        assert ci.width == 0.0
        assert ci.estimate == 5.0

    def test_custom_statistic(self):
        ci = bootstrap_ci([1, 2, 3, 100], statistic=np.median, seed=5)
        assert ci.estimate == 2.5

    def test_contains(self):
        ci = ConfidenceInterval(0.5, 0.4, 0.6, 0.95, 100)
        assert 0.45 in ci
        assert 0.7 not in ci

    def test_higher_confidence_wider(self):
        data = list(np.random.default_rng(0).normal(size=200))
        narrow = bootstrap_ci(data, confidence=0.80, seed=6)
        wide = bootstrap_ci(data, confidence=0.99, seed=6)
        assert wide.width >= narrow.width

    def test_validation(self):
        with pytest.raises(InsufficientDataError):
            bootstrap_ci([])
        with pytest.raises(ConfigError):
            bootstrap_ci([1.0], confidence=1.5)
        with pytest.raises(ConfigError):
            bootstrap_ci([1.0], replicates=2)


class TestFractionCI:
    def test_brackets_p_hat(self):
        ci = fraction_ci(501, 1000, seed=1)
        assert ci.low <= 0.501 <= ci.high

    def test_coverage_roughly_calibrated(self):
        """~95 % of intervals from Binomial(n, 0.3) draws contain 0.3."""
        rng = np.random.default_rng(7)
        hits = 0
        trials = 200
        for i in range(trials):
            successes = int(rng.binomial(400, 0.3))
            ci = fraction_ci(successes, 400, seed=i)
            if 0.3 in ci:
                hits += 1
        assert hits / trials > 0.85

    def test_larger_n_narrower(self):
        small = fraction_ci(30, 100, seed=2)
        large = fraction_ci(3000, 10_000, seed=2)
        assert large.width < small.width

    def test_edge_fractions(self):
        assert fraction_ci(0, 50, seed=3).estimate == 0.0
        assert fraction_ci(50, 50, seed=3).estimate == 1.0

    def test_validation(self):
        with pytest.raises(InsufficientDataError):
            fraction_ci(0, 0)
        with pytest.raises(ConfigError):
            fraction_ci(5, 3)
        with pytest.raises(ConfigError):
            fraction_ci(1, 10, confidence=0.0)

    def test_str_rendering(self):
        text = str(fraction_ci(50, 100, seed=1))
        assert "[" in text and "@95%" in text
