"""Unit tests for threshold recommendation (repro.core.recommend)."""

import pytest

from repro.core.categorize import CategoryCounts
from repro.core.recommend import (
    best_range,
    recommend_threshold_ranges,
)
from repro.errors import ConfigError


def _counts(t: int, gray_fraction: float) -> CategoryCounts:
    gray = int(round(gray_fraction * 1000))
    return CategoryCounts(threshold=t, white=1000 - gray, black=0, gray=gray)


class TestRanges:
    def test_paper_shape_two_ranges(self):
        """A hump in the middle yields two recommended ranges, like the
        paper's 1-11 and 28-50."""
        distribution = (
            [_counts(t, 0.05) for t in range(1, 12)]
            + [_counts(t, 0.14) for t in range(12, 28)]
            + [_counts(t, 0.06) for t in range(28, 51)]
        )
        ranges = recommend_threshold_ranges(distribution, gray_limit=0.10)
        assert [(r.low, r.high) for r in ranges] == [(1, 11), (28, 50)]

    def test_single_range_when_monotone(self):
        distribution = [_counts(t, 0.02 + 0.01 * t) for t in range(1, 20)]
        ranges = recommend_threshold_ranges(distribution, gray_limit=0.10)
        assert len(ranges) == 1
        assert ranges[0].low == 1

    def test_no_ranges_when_always_gray(self):
        distribution = [_counts(t, 0.5) for t in range(1, 10)]
        assert recommend_threshold_ranges(distribution) == []

    def test_max_gray_recorded(self):
        distribution = [_counts(1, 0.03), _counts(2, 0.08)]
        (r,) = recommend_threshold_ranges(distribution, gray_limit=0.10)
        assert r.max_gray_fraction == pytest.approx(0.08)

    def test_unsorted_input_handled(self):
        distribution = [_counts(3, 0.01), _counts(1, 0.01), _counts(2, 0.01)]
        (r,) = recommend_threshold_ranges(distribution)
        assert (r.low, r.high) == (1, 3)

    def test_contains(self):
        distribution = [_counts(t, 0.01) for t in range(5, 9)]
        (r,) = recommend_threshold_ranges(distribution)
        assert 6 in r
        assert 9 not in r

    def test_gray_limit_validation(self):
        with pytest.raises(ConfigError):
            recommend_threshold_ranges([], gray_limit=0.0)

    def test_non_contiguous_thresholds_split_ranges(self):
        distribution = [_counts(1, 0.01), _counts(2, 0.01),
                        _counts(10, 0.01)]
        ranges = recommend_threshold_ranges(distribution)
        assert [(r.low, r.high) for r in ranges] == [(1, 2), (10, 10)]


class TestBestRange:
    def test_widest_wins(self):
        distribution = (
            [_counts(t, 0.05) for t in range(1, 12)]
            + [_counts(t, 0.14) for t in range(12, 28)]
            + [_counts(t, 0.06) for t in range(28, 51)]
        )
        ranges = recommend_threshold_ranges(distribution)
        assert (best_range(ranges).low, best_range(ranges).high) == (28, 50)

    def test_tie_breaks_toward_low(self):
        ranges = recommend_threshold_ranges(
            [_counts(1, 0.01), _counts(2, 0.01),
             _counts(9, 0.01), _counts(10, 0.01)]
        )
        assert best_range(ranges).low == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            best_range([])
