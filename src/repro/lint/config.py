"""Configuration for reprolint: rule selection and the path policy.

The determinism contract does not bind every file equally: the injectable
clock modules *are* the sanctioned home of wall-clock reads, the elastic
executors *are* the sanctioned owners of worker processes, and the
metrics registry implementation necessarily passes metric names around as
variables.  The path policy encodes those carve-outs per rule, so the
self-check can run over all of ``src/repro`` without drowning the real
contract in sanctioned-owner noise.

Paths are matched in normalised package-relative form (``repro/vt/...``),
so the policy is independent of where the tree is checked out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Mapping

from repro.errors import LintError

#: Every rule code the engine knows, with a one-line summary.  RPL000 is
#: the pragma-hygiene rule (unknown code in a pragma) and is never
#: disableable or path-scoped.
RULE_SUMMARIES: dict[str, str] = {
    "RPL000": "malformed reprolint pragma (unknown code or missing '- why')",
    "RPL001": "wall-clock read outside the injectable clock modules",
    "RPL002": "global or unseeded randomness instead of keyed per-sample RNG",
    "RPL003": "entropy source (uuid4, os.urandom, secrets) on the sim path",
    "RPL004": "iteration over an unordered source without sorted()",
    "RPL005": "metric-name discipline (literal, grammar, one kind per name)",
    "RPL006": "bare or swallowed exception handler in collect/faults",
    "RPL007": "multiprocessing pool/process built outside the executors",
    "RPL101": "attribute write reachable from a handler thread outside the "
              "owning lock's with block",
    "RPL102": "file/socket/mmap/store acquired but not closed on all paths",
    "RPL103": "wall-clock/env/entropy call reachable from the digest path",
    "RPL104": "non-ReproError (struct.error/IndexError/zlib.error) can "
              "escape a store/serve module boundary",
    "RPL105": "unbounded value (sha256, path, f-string) as a metric label",
}

ALL_CODES: frozenset[str] = frozenset(RULE_SUMMARIES)

#: The flow-rule family (:mod:`repro.lint.flowrules`).  RPL101/RPL103
#: are whole-program passes over the project call graph; RPL102/104/105
#: are per-file but share the same fact extractor, so all five live
#: outside the per-file ``RULE_CLASSES`` registry.
FLOW_CODES: frozenset[str] = frozenset(
    {"RPL101", "RPL102", "RPL103", "RPL104", "RPL105"})


def normalize_path(path: str) -> str:
    """Canonical display/policy form of a lint target path.

    Posix separators, ``./`` stripped, and everything up to a leading
    ``src/`` dropped, so checked-out and installed trees both yield
    ``repro/...`` paths the policy table can match.
    """
    posix = PurePosixPath(str(path).replace("\\", "/"))
    parts = [p for p in posix.parts if p not in (".",)]
    for anchor in ("src",):
        if anchor in parts[:-1]:
            cut = parts.index(anchor)
            if "repro" in parts[cut + 1:]:
                parts = parts[cut + 1:]
                break
    if "repro" in parts[:-1]:
        parts = parts[parts.index("repro"):]
    return "/".join(parts)


def _matches(path: str, pattern: str) -> bool:
    """Whether normalised ``path`` matches one policy ``pattern``.

    A pattern ending in ``/`` is a directory prefix; anything else must
    match the full path or a trailing path suffix at a ``/`` boundary.
    """
    if pattern.endswith("/"):
        return path.startswith(pattern) or f"/{pattern}" in f"/{path}"
    return path == pattern or path.endswith(f"/{pattern}")


@dataclass(frozen=True)
class PathPolicy:
    """Where one rule applies: include prefixes minus exclude patterns."""

    include: tuple[str, ...] = ("repro/",)
    exclude: tuple[str, ...] = ()

    def applies(self, path: str) -> bool:
        if self.include and not any(_matches(path, p) for p in self.include):
            return False
        return not any(_matches(path, p) for p in self.exclude)


#: The default per-rule path policy — the sanctioned-owner carve-outs.
DEFAULT_POLICIES: dict[str, PathPolicy] = {
    # Injectable clocks are the sanctioned home of wall-clock reads; the
    # serving-layer rate limiter and the executor heartbeat module meter
    # real elapsed time by definition (their default clocks are
    # injectable and overridden in tests), so they are structural
    # carve-outs here rather than pragmas.
    "RPL001": PathPolicy(exclude=("repro/vt/clock.py", "repro/obs/timing.py",
                                  "repro/serve/ratelimit.py",
                                  "repro/parallel/heartbeat.py")),
    "RPL002": PathPolicy(),
    "RPL003": PathPolicy(),
    "RPL004": PathPolicy(),
    # The registry/exporter implementation passes metric names as
    # variables by design; discipline is checked at recording call sites.
    "RPL005": PathPolicy(exclude=("repro/obs/registry.py",
                                  "repro/obs/timing.py",
                                  "repro/obs/export.py")),
    # The swallow rule is scoped to the resilience layers, where a
    # swallowed exception silently breaks the convergence guarantee.
    "RPL006": PathPolicy(include=("repro/collect/", "repro/faults/")),
    # The elastic executors are the sanctioned worker-process owners
    # (fork/spawn pools, reaping, respawn); everything else routes
    # fan-out through run_parallel().
    "RPL007": PathPolicy(exclude=("repro/parallel/executors/",)),
    # Lock discipline is asserted where the shared objects live: the
    # serving layer (handler threads) and the executor layer (worker
    # callbacks).  The heartbeat emitter is thread-confined by
    # construction — one emitter per worker, never shared — so it is a
    # structural carve-out rather than a pragma.
    "RPL101": PathPolicy(include=("repro/serve/", "repro/parallel/"),
                         exclude=("repro/parallel/heartbeat.py",)),
    "RPL102": PathPolicy(),
    # Digest purity stops at the sanctioned wall-clock owners (the same
    # carve-outs as RPL001): reaching one of those modules is fine, the
    # taint walk just does not descend into them.
    "RPL103": PathPolicy(exclude=("repro/vt/clock.py", "repro/obs/timing.py",
                                  "repro/serve/ratelimit.py",
                                  "repro/parallel/heartbeat.py")),
    # The exception contract binds the decode/serve surfaces, where a
    # raw struct.error/IndexError crossing the module boundary is PR
    # 6/8's corruption-surface bug class.
    "RPL104": PathPolicy(include=("repro/store/", "repro/serve/")),
    "RPL105": PathPolicy(exclude=("repro/obs/registry.py",
                                  "repro/obs/timing.py",
                                  "repro/obs/export.py")),
}

# ---------------------------------------------------------------------------
# Flow-analysis roots and carve-outs (consumed by repro.lint.flowrules)
# ---------------------------------------------------------------------------

#: RPL103 taint roots: the functions whose transitive callees define the
#: digest path.  Qualnames are module-qualified (``package.module.Class.
#: method``); every function reachable from one of these must be free of
#: wall-clock/env/entropy calls.
DIGEST_ROOTS: tuple[str, ...] = (
    "repro.store.reportstore.ReportStore.ingest",
    "repro.store.reportstore.ReportStore.ingest_arrays",
    "repro.store.reportstore.ReportStore.save",
    "repro.store.reportstore.ReportStore.digest",
    "repro.parallel.worker.execute_range",
)

#: RPL101 thread roots: ``(path prefix, function-name glob)`` pairs
#: naming the entry points that run on handler/worker threads.  Writes
#: reachable from these without an interposed ``with <lock>`` block are
#: findings.
THREAD_ROOTS: tuple[tuple[str, str], ...] = (
    ("repro/serve/", "do_*"),
    ("repro/serve/", "handle_request"),
    ("repro/parallel/", "execute_task"),
    ("repro/parallel/", "_worker_main"),
)

#: RPL101 thread-confined attribute carve-outs: ``self.<attr>`` writes
#: that are safe without a lock because the owning object never crosses
#: threads.  ``http.server`` hands each request a fresh handler
#: instance on its own thread, so the per-request response plumbing is
#: confined by construction.
THREAD_CONFINED_ATTRS: frozenset[str] = frozenset({
    "close_connection",  # per-request BaseHTTPRequestHandler instance
})

#: RPL102 resource acquirers: a call resolving to one of these hands
#: back something that must be closed on every path.  Dotted entries
#: match import-resolved qualnames; a trailing ``()`` suffix entry like
#: ``ReportStore.load`` matches any receiver's method of that name.
RESOURCE_ACQUIRERS: frozenset[str] = frozenset({
    "open",
    "io.open",
    "gzip.open",
    "bz2.open",
    "lzma.open",
    "mmap.mmap",
    "socket.socket",
    "socket.create_connection",
    "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryFile",
    "ReportStore.load",
})

#: RPL104 exception types that must not escape a store/serve module
#: boundary raw — wrap them in a :class:`repro.errors.ReproError`
#: subclass (``CorruptRecordError``, ``BlockAddressError``, ...).
#: ``KeyError``/``IndexError`` are builtins; the rest are dotted.
CONTRACT_BANNED_RAISES: frozenset[str] = frozenset({
    "struct.error", "zlib.error", "IndexError", "KeyError",
})

#: RPL104 decoder calls that raise non-ReproError on truncated or
#: corrupt input and therefore must sit inside a ``try`` whose handler
#: catches the matching family.  ``Struct.unpack`` covers module-level
#: ``_HEADER = struct.Struct(...)`` constants via the resolver; the
#: ``unpack_from`` forms are deliberately absent — their callers bounds-
#: check offsets first, and whole-buffer ``unpack``/``loads`` is where
#: truncation actually surfaces.
CONTRACT_DECODERS: dict[str, tuple[str, ...]] = {
    "struct.unpack": ("struct.error", "Exception"),
    "struct.Struct.unpack": ("struct.error", "Exception"),
    "zlib.decompress": ("zlib.error", "Exception"),
    "json.loads": ("json.JSONDecodeError", "ValueError", "Exception"),
}

#: RPL105 identifier fragments that mark a metric-label value as
#: unbounded (content hashes, per-minute keys, filesystem paths...).
#: Matched against each ``_``-separated segment of every identifier in
#: the label-value expression.
UNBOUNDED_LABEL_FRAGMENTS: frozenset[str] = frozenset({
    "sha", "sha256", "digest", "hexdigest", "hash", "minute", "uuid",
    "url", "path",
})


@dataclass(frozen=True)
class LintConfig:
    """One lint run's configuration.

    ``select=None`` enables every rule; otherwise only the given codes
    run (RPL000 pragma hygiene always runs).  Unknown codes raise
    :class:`~repro.errors.LintError` immediately — a typo'd ``--select``
    is an internal error, not an empty-but-green run.
    """

    select: frozenset[str] | None = None
    policies: Mapping[str, PathPolicy] = field(
        default_factory=lambda: dict(DEFAULT_POLICIES))

    def __post_init__(self) -> None:
        if self.select is not None:
            unknown = sorted(set(self.select) - ALL_CODES)
            if unknown:
                raise LintError(
                    f"unknown rule code(s) in select: {', '.join(unknown)}; "
                    f"known codes are {', '.join(sorted(ALL_CODES))}")

    def enabled(self, code: str) -> bool:
        if code == "RPL000":
            return True
        return self.select is None or code in self.select

    def rule_applies(self, code: str, path: str) -> bool:
        if not self.enabled(code):
            return False
        policy = self.policies.get(code)
        return policy.applies(path) if policy is not None else True


def parse_select(spec: str) -> frozenset[str]:
    """Parse a ``--select`` string (``RPL001,RPL004``) into codes."""
    codes = frozenset(
        token.strip().upper() for token in spec.split(",") if token.strip())
    if not codes:
        raise LintError("--select given but no rule codes parsed")
    return codes
