"""Fractional ranking with tie handling.

Spearman correlation is Pearson correlation over ranks; with the heavily
tied data the paper correlates (engine verdicts take only three values),
tie handling is the whole game.  :func:`fractional_ranks` assigns tied
values the average of the positions they occupy — the same convention as
``scipy.stats.rankdata(method="average")``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def fractional_ranks(values: Sequence[float]) -> list[float]:
    """Average ranks (1-based) of ``values``, ties sharing their mean rank.

    >>> fractional_ranks([10, 20, 20, 30])
    [1.0, 2.5, 2.5, 4.0]
    """
    n = len(values)
    order = sorted(range(n), key=lambda i: values[i])
    ranks = [0.0] * n
    i = 0
    while i < n:
        j = i
        while j + 1 < n and values[order[j + 1]] == values[order[i]]:
            j += 1
        # Positions i..j (0-based) share the average 1-based rank.
        shared = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = shared
        i = j + 1
    return ranks


def fractional_ranks_array(matrix: np.ndarray) -> np.ndarray:
    """Column-wise fractional ranks of a 2-D array, vectorised.

    The engine-correlation analysis ranks a (scans × engines) matrix with
    millions of rows; this implementation is pure numpy so it stays fast.
    Equivalent to applying :func:`fractional_ranks` to every column.
    """
    if matrix.ndim != 2:
        raise ValueError(f"expected 2-D matrix, got shape {matrix.shape}")
    n, m = matrix.shape
    ranks = np.empty((n, m), dtype=np.float64)
    for col in range(m):
        column = matrix[:, col]
        order = np.argsort(column, kind="stable")
        sorted_vals = column[order]
        # Boundaries of tie groups in the sorted order.
        boundaries = np.empty(n, dtype=bool)
        boundaries[0] = True
        np.not_equal(sorted_vals[1:], sorted_vals[:-1], out=boundaries[1:])
        group_ids = np.cumsum(boundaries) - 1
        group_starts = np.flatnonzero(boundaries)
        group_ends = np.append(group_starts[1:], n)
        # Average 1-based rank of each tie group.
        group_rank = (group_starts + group_ends - 1) / 2 + 1
        ranks[order, col] = group_rank[group_ids]
    return ranks
