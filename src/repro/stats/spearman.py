"""Spearman rank correlation with significance.

Used twice by the paper: §5.3.5 correlates AV-Rank differences with scan
intervals (ρ = 0.9181, p = 2.6e-167), and §7.2 correlates engine verdict
columns pairwise, calling a pair strongly correlated above ρ = 0.8.

``spearman`` handles one pair with full tie handling and the standard
t-distribution p-value approximation; ``spearman_matrix`` computes all
pairwise correlations of a (observations × variables) matrix in one
vectorised pass — the 70-engine analysis needs 2 415 pairs over millions
of rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InsufficientDataError
from repro.stats.ranking import fractional_ranks, fractional_ranks_array


@dataclass(frozen=True)
class SpearmanResult:
    """Correlation coefficient and two-sided significance."""

    rho: float
    p_value: float
    n: int

    def strong(self, threshold: float = 0.8) -> bool:
        """The paper's strong-correlation criterion (§7.2)."""
        return self.rho > threshold


def _pearson(x: Sequence[float], y: Sequence[float]) -> float:
    n = len(x)
    mx = sum(x) / n
    my = sum(y) / n
    sxy = sxx = syy = 0.0
    for xi, yi in zip(x, y, strict=False):
        dx = xi - mx
        dy = yi - my
        sxy += dx * dy
        sxx += dx * dx
        syy += dy * dy
    if sxx == 0.0 or syy == 0.0:
        return float("nan")
    return sxy / math.sqrt(sxx * syy)


def _t_sf(t: float, df: float) -> float:
    """Survival function of Student's t via the incomplete beta function.

    Uses the continued-fraction evaluation of I_x(a, b) (Numerical Recipes
    6.4); accurate to ~1e-10, which the tests verify against scipy.
    """
    if math.isnan(t):
        return float("nan")
    x = df / (df + t * t)
    p = 0.5 * _betainc(df / 2.0, 0.5, x)
    return p if t > 0 else 1.0 - p


def _betainc(a: float, b: float, x: float) -> float:
    """Regularised incomplete beta I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_beta = math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
    front = math.exp(ln_beta + a * math.log(x) + b * math.log1p(-x))
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method)."""
    tiny = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 300):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


def p_value_for_rho(rho: float, n: int) -> float:
    """Two-sided p-value for a Spearman ρ under the t approximation."""
    if n < 3 or math.isnan(rho):
        return float("nan")
    if abs(rho) >= 1.0:
        return 0.0
    df = n - 2
    t = rho * math.sqrt(df / (1.0 - rho * rho))
    return min(1.0, 2.0 * _t_sf(abs(t), df))


def spearman(x: Sequence[float], y: Sequence[float]) -> SpearmanResult:
    """Spearman ρ of two equal-length sequences, with p-value."""
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
    if len(x) < 3:
        raise InsufficientDataError(3, len(x), "paired observations")
    rx = fractional_ranks(x)
    ry = fractional_ranks(y)
    rho = _pearson(rx, ry)
    return SpearmanResult(rho=rho, p_value=p_value_for_rho(rho, len(x)), n=len(x))


def spearman_matrix(matrix: np.ndarray) -> np.ndarray:
    """All pairwise Spearman ρ of the columns of ``matrix``.

    ``matrix`` is (observations × variables).  Columns with zero rank
    variance (an engine that answered identically on every scan) yield
    NaN against everything, matching the pairwise behaviour of
    :func:`spearman`.
    """
    if matrix.ndim != 2:
        raise ValueError(f"expected 2-D matrix, got shape {matrix.shape}")
    n = matrix.shape[0]
    if n < 3:
        raise InsufficientDataError(3, n, "observations")
    ranks = fractional_ranks_array(np.asarray(matrix))
    centred = ranks - ranks.mean(axis=0, keepdims=True)
    norms = np.sqrt((centred**2).sum(axis=0))
    with np.errstate(divide="ignore", invalid="ignore"):
        normalised = centred / norms
    corr = normalised.T @ normalised
    corr[:, norms == 0] = np.nan
    corr[norms == 0, :] = np.nan
    np.clip(corr, -1.0, 1.0, out=corr)
    return corr
