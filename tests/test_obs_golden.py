"""Metric golden tests: fixed-seed exact values, serial == parallel.

Two gates live here, next to the store-digest equivalence gate:

1. **Golden values.**  A fixed-seed run of the canonical tiny scenario
   must export *exactly* the values pinned below.  Every pinned series
   is zlib-independent (report counts, verbose bytes, bucket counts) so
   the goldens hold across zlib builds; the compressed-bytes gauge is
   asserted present-and-positive only.
2. **Partition invariance.**  ``run_experiment(config, workers=3)``
   merges its shard registries into an export *byte-identical* to the
   serial run's — JSONL and Prometheus text alike.  This is the metrics
   analogue of the digest gate and the acceptance criterion of the
   observability layer.
"""

import json

import pytest

from repro.analysis.experiment import run_experiment
from repro.obs import (
    JSONL_SCHEMA,
    MetricsRegistry,
    jsonl_lines,
    prometheus_text,
    summary,
)

#: Per-month ingest counts of tiny_scenario(n_samples=150, seed=13).
GOLDEN_MONTH_RECORDS = {
    "05/2021": 18, "06/2021": 17, "07/2021": 26, "08/2021": 25,
    "09/2021": 43, "10/2021": 37, "11/2021": 32, "12/2021": 46,
    "01/2022": 62, "02/2022": 47, "03/2022": 40, "04/2022": 56,
    "05/2022": 69, "06/2022": 119,
}

#: Scalar series of the same run (zlib-independent only).
GOLDEN_SCALARS = {
    ("run.events.total", ()): 637,
    ("vt.register.total", ()): 150,
    ("vt.scan.total", (("kind", "upload"),)): 150,
    ("vt.scan.total", (("kind", "rescan"),)): 487,
    ("vt.report.total", ()): 637,
    ("store.ingest.bytes", ()): 274808,
    ("store.ingest.duplicates", ()): 0,
    ("store.reports", ()): 637,
    ("store.samples", ()): 150,
    ("store.fresh_samples", ()): 150,
    ("store.blocks", ()): 14,
    ("store.bytes.verbose", ()): 8535800,
    ("store.bytes.buffered", ()): 0,
}

GOLDEN_POSITIVES = {
    "edges": [0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 70],
    "counts": [239, 49, 37, 22, 54, 28, 50, 39, 30, 66, 23, 0],
    "sum": 7055,
    "count": 637,
}

GOLDEN_INTERVALS = {
    "edges": [60, 360, 1440, 4320, 10080, 20160, 43200, 129600, 259200],
    "counts": [3, 12, 73, 95, 89, 78, 68, 52, 13, 4],
    "sum": 11560706,
    "count": 487,
}


@pytest.fixture(scope="module")
def serial_metrics(tiny_config) -> MetricsRegistry:
    registry = MetricsRegistry()
    run_experiment(tiny_config, metrics=registry)
    return registry


@pytest.fixture(scope="module")
def parallel_metrics(tiny_config) -> MetricsRegistry:
    registry = MetricsRegistry()
    run_experiment(tiny_config, workers=3, metrics=registry)
    return registry


def _rows(registry) -> dict:
    rows = {}
    for line in jsonl_lines(registry)[1:]:
        row = json.loads(line)
        rows[(row["name"], tuple(sorted(row["labels"].items())))] = row
    return rows


# ----------------------------------------------------------------------
# Gate 1: fixed-seed golden values
# ----------------------------------------------------------------------


class TestGoldenValues:
    def test_schema_line(self, serial_metrics):
        assert (json.loads(jsonl_lines(serial_metrics)[0])
                == {"schema": JSONL_SCHEMA})

    def test_scalar_series_exact(self, serial_metrics):
        rows = _rows(serial_metrics)
        for key, expected in GOLDEN_SCALARS.items():
            assert rows[key]["value"] == expected, key

    def test_month_ingest_counters_exact(self, serial_metrics):
        rows = _rows(serial_metrics)
        got = {labels[0][1]: row["value"]
               for (name, labels), row in rows.items()
               if name == "store.ingest.records"}
        assert got == GOLDEN_MONTH_RECORDS

    def test_month_gauges_mirror_ingest_counters(self, serial_metrics):
        rows = _rows(serial_metrics)
        for month, expected in GOLDEN_MONTH_RECORDS.items():
            key = ("store.month.reports", (("month", month),))
            assert rows[key]["value"] == expected

    def test_positives_histogram_exact(self, serial_metrics):
        row = _rows(serial_metrics)[("vt.report.positives", ())]
        for field, expected in GOLDEN_POSITIVES.items():
            assert row[field] == expected, field

    def test_rescan_interval_histogram_exact(self, serial_metrics):
        row = _rows(serial_metrics)[("vt.rescan.interval_minutes", ())]
        for field, expected in GOLDEN_INTERVALS.items():
            assert row[field] == expected, field

    def test_record_bytes_histogram_consistent(self, serial_metrics):
        row = _rows(serial_metrics)[("store.ingest.record_bytes", ())]
        assert row["count"] == 637
        assert row["sum"] == 274808
        assert sum(row["counts"]) == row["count"]

    def test_compressed_bytes_present_not_pinned(self, serial_metrics):
        # zlib-build-dependent: present and positive, never hardcoded.
        row = _rows(serial_metrics)[("store.bytes.compressed", ())]
        assert row["value"] > 0

    def test_gauges_match_store_accounting(self, serial_metrics, tiny_store):
        rows = _rows(serial_metrics)
        assert (rows[("store.reports", ())]["value"]
                == tiny_store.report_count)
        assert (rows[("store.samples", ())]["value"]
                == tiny_store.sample_count)
        stats = tiny_store.stats()
        assert (rows[("store.bytes.verbose", ())]["value"]
                == stats.verbose_bytes)
        assert (rows[("store.bytes.compressed", ())]["value"]
                == stats.compressed_bytes)

    def test_rerun_exports_identical_bytes(self, tiny_config, serial_metrics):
        again = MetricsRegistry()
        run_experiment(tiny_config, metrics=again)
        assert jsonl_lines(again) == jsonl_lines(serial_metrics)
        assert prometheus_text(again) == prometheus_text(serial_metrics)


# ----------------------------------------------------------------------
# Gate 2: serial == merged-parallel, byte for byte
# ----------------------------------------------------------------------


class TestPartitionInvariance:
    def test_jsonl_byte_identical(self, serial_metrics, parallel_metrics):
        assert jsonl_lines(parallel_metrics) == jsonl_lines(serial_metrics)

    def test_prometheus_byte_identical(self, serial_metrics,
                                       parallel_metrics):
        assert (prometheus_text(parallel_metrics)
                == prometheus_text(serial_metrics))

    def test_summary_tree_identical(self, serial_metrics, parallel_metrics):
        assert summary(parallel_metrics) == summary(serial_metrics)

    def test_other_worker_counts_also_match(self, tiny_config,
                                            serial_metrics):
        registry = MetricsRegistry()
        run_experiment(tiny_config, workers=2, metrics=registry)
        assert jsonl_lines(registry) == jsonl_lines(serial_metrics)

    def test_parallel_run_still_digest_equivalent(self, tiny_config,
                                                  tiny_store):
        # The metrics gate rides on top of the dataset gate, not instead
        # of it: with a live registry attached the digests still match.
        registry = MetricsRegistry()
        data = run_experiment(tiny_config, workers=3, metrics=registry)
        assert data.store.digest() == tiny_store.digest()
