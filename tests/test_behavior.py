"""Unit tests for the verdict-timeline model (repro.vt.behavior)."""

import random

import pytest

from repro.errors import ConfigError
from repro.vt import clock
from repro.vt.behavior import (
    BehaviorContext,
    BehaviorParams,
    DetectionPlan,
    build_plan,
    _beta,
    _poisson,
)
from repro.vt.samples import Sample, sha256_of


@pytest.fixture(scope="module")
def ctx(fleet):
    return BehaviorContext(fleet, BehaviorParams(), seed=42)


_DAY30 = clock.minutes(days=30)


def _sample(token: str, malicious: bool, file_type: str = "Win32 EXE",
            first_seen: int = _DAY30) -> Sample:
    return Sample(
        sha256=sha256_of(token),
        file_type=file_type,
        malicious=malicious,
        first_seen=first_seen,
    )


class TestParams:
    def test_negative_rates_rejected(self):
        with pytest.raises(ConfigError):
            BehaviorParams(retract_prob=-0.1)
        with pytest.raises(ConfigError):
            BehaviorParams(late_join_rate=-1)

    def test_hazard_rate_bounds(self):
        with pytest.raises(ConfigError):
            BehaviorParams(hazard_rate=2.0)


class TestSamplers:
    def test_beta_degenerate_means(self):
        rng = random.Random(1)
        assert _beta(rng, 0.0, 5.0) == 0.0
        assert _beta(rng, 1.0, 5.0) == 1.0

    def test_beta_in_unit_interval(self):
        rng = random.Random(2)
        for _ in range(200):
            assert 0.0 <= _beta(rng, 0.4, 6.0) <= 1.0

    def test_beta_mean_approximately_correct(self):
        rng = random.Random(3)
        draws = [_beta(rng, 0.3, 8.0) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(0.3, abs=0.02)

    def test_poisson_zero_rate(self):
        assert _poisson(random.Random(1), 0.0) == 0

    def test_poisson_mean(self):
        rng = random.Random(4)
        draws = [_poisson(rng, 2.5) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(2.5, abs=0.15)


class TestPlanDeterminism:
    def test_same_sample_same_plan(self, ctx):
        s1 = _sample("det", True)
        s2 = _sample("det", True)
        assert build_plan(s1, ctx).transitions == build_plan(s2, ctx).transitions

    def test_different_samples_differ(self, ctx):
        p1 = build_plan(_sample("a", True), ctx)
        p2 = build_plan(_sample("b", True), ctx)
        assert p1.transitions != p2.transitions

    def test_seed_changes_plan(self, fleet):
        ctx1 = BehaviorContext(fleet, BehaviorParams(), seed=1)
        ctx2 = BehaviorContext(fleet, BehaviorParams(), seed=2)
        s = _sample("seeded", True)
        assert (build_plan(s, ctx1).transitions
                != build_plan(s, ctx2).transitions)


class TestPlanStructure:
    def test_benign_plans_mostly_empty(self, ctx):
        empty = 0
        for i in range(300):
            plan = build_plan(_sample(f"ben{i}", False, "JPEG"), ctx)
            if not plan.transitions:
                empty += 1
        assert empty > 200  # JPEG fp_episode_prob is tiny

    def test_malicious_pe_has_detectors(self, ctx):
        detected = 0
        for i in range(50):
            plan = build_plan(_sample(f"mal{i}", True), ctx)
            if len(plan.eventual_detectors()) >= 10:
                detected += 1
        assert detected > 35  # most PE malware gets broad coverage

    def test_label_at_steps_through_transitions(self):
        plan = DetectionPlan(
            transitions={3: ((100, 1), (500, 0))},
            scan_rng=random.Random(0),
        )
        assert plan.label_at(3, 50) == 0
        assert plan.label_at(3, 100) == 1
        assert plan.label_at(3, 499) == 1
        assert plan.label_at(3, 500) == 0
        assert plan.label_at(7, 100) == 0  # engine without transitions

    def test_transitions_time_sorted(self, ctx):
        for i in range(100):
            plan = build_plan(_sample(f"s{i}", True), ctx)
            for timeline in plan.transitions.values():
                times = [t for t, _ in timeline]
                assert times == sorted(times)

    def test_observed_sequences_monotone_when_fresh(self, ctx):
        """Within the observation window, per-engine verdicts should be
        monotone except for FP episodes (the hazard-rarity property)."""
        first_seen = clock.minutes(days=10)
        dips = 0
        total = 0
        for i in range(100):
            plan = build_plan(_sample(f"m{i}", True, first_seen=first_seen),
                              ctx)
            for timeline in plan.transitions.values():
                labels_in_window = [
                    lab for t, lab in timeline if t > first_seen
                ]
                total += 1
                # A 1 followed by 0 in-window means a visible retraction:
                # allowed; a 0 followed by 1 after a 1 would be a hazard.
                for a, b, c in zip(labels_in_window, labels_in_window[1:],
                                   labels_in_window[2:], strict=False):
                    if a == c != b:
                        dips += 1
        assert total > 0
        assert dips == 0  # default hazard_rate is ~0


class TestGroundTruthStructure:
    def test_known_malware_fully_detected_at_first_scan(self, ctx):
        """Some malicious samples must be fully covered pre-submission."""
        fully_pre = 0
        for i in range(200):
            s = _sample(f"k{i}", True)
            plan = build_plan(s, ctx)
            if plan.transitions and all(
                timeline[0][0] < s.first_seen
                for timeline in plan.transitions.values()
            ):
                fully_pre += 1
        assert fully_pre > 20

    def test_fresh_growth_exists(self, ctx):
        """Other samples gain detections after first submission."""
        growers = 0
        for i in range(200):
            s = _sample(f"g{i}", True)
            plan = build_plan(s, ctx)
            if any(timeline[0][0] > s.first_seen and timeline[0][1] == 1
                   for timeline in plan.transitions.values()):
                growers += 1
        assert growers > 60

    def test_copied_followers_recorded(self, ctx):
        copied_seen = 0
        for i in range(50):
            plan = build_plan(_sample(f"c{i}", True), ctx)
            for follower, leader in plan.copied.items():
                copied_seen += 1
                follower_tl = plan.transitions.get(follower)
                leader_tl = plan.transitions.get(leader)
                assert follower_tl == leader_tl
        assert copied_seen > 50  # many copy rules fire on PE samples

    def test_gzip_copy_rule_only_fires_on_gzip(self, ctx, fleet):
        lionic = fleet.index["Lionic"]
        for i in range(100):
            plan = build_plan(_sample(f"z{i}", True, "ZIP"), ctx)
            assert lionic not in plan.copied
