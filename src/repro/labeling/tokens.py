"""Detection-string tokenisation and normalisation.

Antivirus detection names are idiosyncratic ("Trojan.Win32.Emotet.abcd",
"W32/Emotet.AB!tr", "Gen:Variant.Emotet.12") but usually embed a family
token.  Following the AVClass approach, a label is split on punctuation,
lower-cased, and filtered against a generic-token list (platform names,
category words, hex blobs); what survives are candidate family tokens.
"""

from __future__ import annotations

import re

#: Tokens that never identify a family: categories, platforms, verdict
#: qualifiers, packer markers.  A trimmed version of AVClass's default.
GENERIC_TOKENS: frozenset[str] = frozenset({
    "trojan", "troj", "virus", "worm", "backdoor", "adware", "spyware",
    "malware", "riskware", "rootkit", "ransom", "ransomware", "downloader",
    "dropper", "dldr", "injector", "banker", "keylogger", "stealer",
    "agent", "generic", "gen", "genkryptik", "kryptik", "heur",
    "heuristic", "suspicious", "variant", "behaveslike", "lookslike",
    "malicious", "application", "program", "unwanted", "potentially",
    "win32", "win64", "w32", "w64", "msil", "linux", "elf", "android",
    "andr", "androidos", "osx", "macos", "unix", "script", "js", "vbs",
    "html", "php", "java", "doc", "docm", "xml", "pdf", "o97m", "x97m",
    "packed", "packer", "obfuscated", "obfus", "crypt", "cryptor",
    "small", "tiny", "blacklist", "blacklisted", "malform", "eldorado",
    "attribute", "highconfidence", "score", "ai", "ml", "cloud", "engine",
    "pua", "pup", "not", "a", "of", "the", "tool", "hacktool", "grayware",
    "mtb", "save", "wacatac", "malgent", "siggen", "vho", "possiblethreat",
})

#: Pure hex / numeric blobs and very short fragments are never families.
_NOISE = re.compile(r"^(?:[0-9a-f]{4,}|[0-9]+|.{1,2})$")

_SPLIT = re.compile(r"[^0-9a-zA-Z]+")


def tokenize_label(label: str) -> list[str]:
    """Split a raw detection string into lower-case tokens.

    >>> tokenize_label("Trojan.Win32.Emotet.abcd!MTB")
    ['trojan', 'win32', 'emotet', 'abcd', 'mtb']
    """
    return [t.lower() for t in _SPLIT.split(label) if t]


def normalize_label(label: str) -> list[str]:
    """Candidate family tokens of a detection string, noise removed.

    >>> normalize_label("Trojan.Win32.Emotet.abcd!MTB")
    ['emotet']
    """
    candidates = []
    for token in tokenize_label(label):
        if token in GENERIC_TOKENS:
            continue
        if _NOISE.match(token):
            continue
        candidates.append(token)
    return candidates
