"""Figures 3-4 / Observation 2: who the stable samples are.

Paper: 66.36 % of stable samples hold AV-Rank 0 (benign), over 80 % stay
at or below 5; half of stable samples span at most 17 days, and benign
samples hold their rank the longest (mean 20.34 days, median 14).
"""

from __future__ import annotations

from functools import partial

from repro.analysis.dynamics import stable_sample_profile
from repro.analysis.rendering import render_fig3_fig4

from conftest import run_once, say


def test_fig3_fig4_stable_sample_profile(benchmark, bench_data):
    profile = run_once(
        benchmark, partial(stable_sample_profile, bench_data.series())
    )
    say()
    say(render_fig3_fig4(profile))

    # Figure 3 landmarks.
    assert 0.50 < profile.rank_zero_fraction < 0.80  # paper: 66.36 %
    assert profile.rank_at_most_5_fraction > 0.78    # paper: >80 %

    # Figure 4: benign samples hold stability over the longest spans.
    benign_box = profile.span_by_rank.get(0)
    assert benign_box is not None
    nonzero_means = [box.mean for rank, box in profile.span_by_rank.items()
                     if rank != 0 and box.count >= 10]
    if nonzero_means:
        assert benign_box.mean > sum(nonzero_means) / len(nonzero_means)
