"""Tests for the Section 7 pipelines (repro.analysis.engines)."""

import pytest

from repro.analysis.engines import (
    APPENDIX_FILE_TYPES,
    dataset_s_reports,
    engine_correlation,
    engine_stability,
)


@pytest.fixture(scope="module")
def stability(experiment):
    return engine_stability(experiment.store, experiment.engine_names)


@pytest.fixture(scope="module")
def correlation(experiment):
    return engine_correlation(experiment.store, experiment.engine_names,
                              min_scans=30)


class TestDatasetSFilter:
    def test_membership_rules(self, experiment):
        for _, reports in dataset_s_reports(experiment.store):
            assert len(reports) >= 2
            assert reports[0].first_submission_date >= 0
            ranks = [r.positives for r in reports]
            assert max(ranks) > min(ranks)


class TestEngineStability:
    def test_flips_exist(self, stability):
        assert stability.flips.total_flips > 100

    def test_up_flips_dominate(self, stability):
        # Paper §7.1.1: 0->1 flips outnumber 1->0 roughly 2.7:1.
        assert stability.up_down_ratio > 1.3

    def test_hazards_are_rare(self, stability):
        # The headline disagreement with Zhu et al.: hazard flips are a
        # vanishing share of flips in organic scan data.
        assert stability.hazard_share < 0.02

    def test_update_coincidence_near_paper(self, stability):
        # Paper §5.5: ~60 % of flips co-occur with an engine update.
        assert 0.40 < stability.flips.update_coincidence_rate < 0.85

    def test_stable_engines_flip_less(self, stability):
        flips = stability.flips
        jiangmin = flips.flip_ratio("Jiangmin")
        fsecure = flips.flip_ratio("F-Secure")
        assert jiangmin < fsecure

    def test_flip_matrix_covers_appendix_types(self, stability):
        types, matrix = stability.flips.flip_ratio_matrix(
            APPENDIX_FILE_TYPES
        )
        assert types == list(APPENDIX_FILE_TYPES)
        assert matrix.shape == (5, 70)


class TestEngineCorrelation:
    def test_known_pairs_recovered(self, correlation):
        overall = correlation.overall
        assert overall.rho_of("Avast", "AVG") > 0.9
        assert overall.rho_of("Paloalto", "APEX") > 0.9
        assert overall.rho_of("BitDefender", "FireEye") > 0.9

    def test_independent_pair_not_strong(self, correlation):
        assert correlation.overall.rho_of("Kaspersky", "DrWeb") < 0.8

    def test_oem_family_in_one_group(self, correlation):
        groups = correlation.overall_groups()
        bdf_group = next(g for g in groups if "BitDefender" in g)
        for member in ("FireEye", "MAX", "ALYac", "Ad-Aware"):
            assert member in bdf_group

    def test_involved_engine_count_near_paper(self, correlation):
        # Paper: 17 engines at the overall level.
        involved = correlation.overall.involved_engines()
        assert 10 <= len(involved) <= 32

    def test_per_type_analyses_present(self, correlation):
        assert "Win32 EXE" in correlation.per_type

    def test_groups_for_unanalysed_type_empty(self, correlation):
        assert correlation.groups_for("TYPE_300") == []

    def test_win32_exe_avast_avg_group(self, correlation):
        groups = correlation.groups_for("Win32 EXE")
        if groups:
            flattened = {name for group in groups for name in group}
            assert "Avast" in flattened or "BitDefender" in flattened
