"""Section 5 pipelines: Figures 2-8 and Observations 1-7.

Each function takes pre-built AV-Rank series (see
:class:`repro.analysis.experiment.ExperimentData`) and returns a result
dataclass carrying both the full curves and the headline landmarks the
paper quotes, so benchmarks can print tables and tests can assert shapes.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.core.avrank import AVRankSeries, split_stable_dynamic
from repro.core.categorize import CategoryCounts, category_distribution
from repro.core.metrics import (
    BoxSummary,
    PairwiseDifferences,
    adjacent_deltas,
    deltas_by_file_type,
    overall_delta,
    pairwise_differences,
    summarize_by_file_type,
)
from repro.stats.cdf import EmpiricalCDF
from repro.stats.descriptive import BoxplotStats, boxplot_stats
from repro.stats.kstest import KSResult, ks_two_sample
from repro.stats.spearman import SpearmanResult
from repro.vt.filetypes import PE_FILE_TYPES


# ---------------------------------------------------------------------------
# Figure 2 / Observation 1
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StableDynamicSplit:
    """§5.1: the stable/dynamic landscape over multi-report samples."""

    n_stable: int
    n_dynamic: int
    stable_report_cdf: EmpiricalCDF
    dynamic_report_cdf: EmpiricalCDF

    @property
    def n_multi(self) -> int:
        return self.n_stable + self.n_dynamic

    @property
    def dynamic_fraction(self) -> float:
        """Paper: 50.10 %."""
        return self.n_dynamic / self.n_multi if self.n_multi else 0.0

    @property
    def stable_two_report_fraction(self) -> float:
        """Paper: 67.09 % of stable samples have exactly two reports."""
        return self.stable_report_cdf.at(2)

    @property
    def dynamic_two_report_fraction(self) -> float:
        """Paper: 71.3 %."""
        return self.dynamic_report_cdf.at(2)

    def report_count_ks(self) -> KSResult:
        """KS test of the two classes' report-count distributions —
        quantifying Figure 2's "striking similarity" claim."""
        return ks_two_sample(self.stable_report_cdf._sorted,
                             self.dynamic_report_cdf._sorted)


def stable_dynamic_split(series: Sequence[AVRankSeries]) -> StableDynamicSplit:
    stable, dynamic = split_stable_dynamic(series)
    return StableDynamicSplit(
        n_stable=len(stable),
        n_dynamic=len(dynamic),
        stable_report_cdf=EmpiricalCDF([s.n for s in stable]),
        dynamic_report_cdf=EmpiricalCDF([s.n for s in dynamic]),
    )


# ---------------------------------------------------------------------------
# Figures 3-4 / Observation 2
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StableSampleProfile:
    """§5.2: AV-Rank distribution and time spans of stable samples."""

    rank_cdf: EmpiricalCDF
    span_by_rank: dict[int, BoxplotStats]
    median_span_days: float
    benign_mean_span_days: float

    @property
    def rank_zero_fraction(self) -> float:
        """Paper: 66.36 % of stable samples hold AV-Rank 0."""
        return self.rank_cdf.at(0)

    @property
    def rank_at_most_5_fraction(self) -> float:
        """Paper: over 80 % of stable samples have AV-Rank <= 5."""
        return self.rank_cdf.at(5)


def stable_sample_profile(
    series: Sequence[AVRankSeries], rank_group_cap: int = 10
) -> StableSampleProfile:
    """Figures 3-4 over the stable multi-report samples.

    ``rank_group_cap`` pools every rank above the cap into one box group,
    as ranks get sparse quickly.
    """
    stable = [s for s in series if s.multi and s.stable]
    ranks = [s.ranks[0] for s in stable]
    spans: dict[int, list[float]] = defaultdict(list)
    for s in stable:
        group = min(s.ranks[0], rank_group_cap)
        spans[group].append(s.span_days)
    all_spans = sorted(s.span_days for s in stable)
    benign_spans = [s.span_days for s in stable if s.ranks[0] == 0]
    return StableSampleProfile(
        rank_cdf=EmpiricalCDF(ranks),
        span_by_rank={
            rank: boxplot_stats(values) for rank, values in spans.items()
        },
        median_span_days=(all_spans[len(all_spans) // 2] if all_spans else 0.0),
        benign_mean_span_days=(sum(benign_spans) / len(benign_spans)
                               if benign_spans else 0.0),
    )


# ---------------------------------------------------------------------------
# Figure 5 / Observation 3
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeltaDistributions:
    """§5.3.3: the pooled δ and per-sample Δ distributions over S."""

    delta_cdf: EmpiricalCDF  # adjacent-scan δ
    delta_overall_cdf: EmpiricalCDF  # per-sample Δ

    @property
    def adjacent_zero_fraction(self) -> float:
        """Paper: 35.49 % of adjacent pairs show no change."""
        return self.delta_cdf.at(0)

    @property
    def overall_above_2_fraction(self) -> float:
        """Paper: roughly half of samples have Δ > 2."""
        return 1.0 - self.delta_overall_cdf.at(2)

    @property
    def overall_within_11_fraction(self) -> float:
        """Paper: 90 % of samples have Δ <= 11."""
        return self.delta_overall_cdf.at(11)


def delta_distributions(dataset_s: Sequence[AVRankSeries]) -> DeltaDistributions:
    return DeltaDistributions(
        delta_cdf=EmpiricalCDF(adjacent_deltas(dataset_s)),
        delta_overall_cdf=EmpiricalCDF(overall_delta(dataset_s)),
    )


# ---------------------------------------------------------------------------
# Figure 6 / Observation 4
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PerTypeDynamics:
    """§5.3.4: δ/Δ box summaries per file type."""

    adjacent: dict[str, BoxSummary]
    overall: dict[str, BoxSummary]

    def ranked_by_overall_mean(self) -> list[tuple[str, float]]:
        """File types by mean Δ, most dynamic first (paper: PE on top)."""
        return sorted(
            ((ftype, box.mean) for ftype, box in self.overall.items()),
            key=lambda item: -item[1],
        )

    def ranked_by_adjacent_mean(self) -> list[tuple[str, float]]:
        """File types by mean δ (paper: Win32 DLL on top, JSON at bottom)."""
        return sorted(
            ((ftype, box.mean) for ftype, box in self.adjacent.items()),
            key=lambda item: -item[1],
        )


def per_type_dynamics(dataset_s: Sequence[AVRankSeries]) -> PerTypeDynamics:
    adjacent, overall = deltas_by_file_type(dataset_s)
    return PerTypeDynamics(
        adjacent=summarize_by_file_type(adjacent),
        overall=summarize_by_file_type(overall),
    )


# ---------------------------------------------------------------------------
# Figure 7 / Observation 5
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntervalEffect:
    """§5.3.5: AV-Rank difference vs scan interval."""

    pairs: PairwiseDifferences
    binned_boxes: dict[int, BoxplotStats]
    correlation: SpearmanResult

    @property
    def max_interval_days(self) -> float:
        return max(self.pairs.interval_days) if len(self.pairs) else 0.0


def interval_effect(
    dataset_s: Sequence[AVRankSeries],
    bin_days: float = 30.0,
    max_pairs_per_sample: int = 200,
) -> IntervalEffect:
    pairs = pairwise_differences(dataset_s, max_pairs_per_sample)
    boxes = {
        bucket: boxplot_stats(values)
        for bucket, values in sorted(pairs.binned(bin_days).items())
        if values
    }
    return IntervalEffect(
        pairs=pairs,
        binned_boxes=boxes,
        correlation=pairs.interval_correlation(),
    )


# ---------------------------------------------------------------------------
# Figure 8 / Observation 6
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ThresholdImpact:
    """§5.4: white/black/gray fractions over thresholds, overall and PE."""

    overall: tuple[CategoryCounts, ...]
    pe_only: tuple[CategoryCounts, ...]

    def gray_curve(self, pe: bool = False) -> list[tuple[int, float]]:
        counts = self.pe_only if pe else self.overall
        return [(c.threshold, c.gray_fraction) for c in counts]

    @property
    def overall_peak(self) -> tuple[int, float]:
        best = max(self.overall, key=lambda c: c.gray_fraction)
        return best.threshold, best.gray_fraction

    @property
    def pe_peak(self) -> tuple[int, float]:
        best = max(self.pe_only, key=lambda c: c.gray_fraction)
        return best.threshold, best.gray_fraction


#: Detection-count thresholds swept by Figure 8 (1..50).
DEFAULT_THRESHOLDS: tuple[int, ...] = tuple(range(1, 51))


def threshold_impact(
    dataset_s: Sequence[AVRankSeries],
    thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
) -> ThresholdImpact:
    pe = [s for s in dataset_s if s.file_type in PE_FILE_TYPES]
    return ThresholdImpact(
        overall=tuple(category_distribution(dataset_s, thresholds)),
        pe_only=tuple(category_distribution(pe, thresholds)),
    )


# ---------------------------------------------------------------------------
# Report-count sanity (Figure 2's companion statistic)
# ---------------------------------------------------------------------------


def report_count_histogram(series: Sequence[AVRankSeries]) -> Counter:
    """Histogram of reports-per-sample for a series collection."""
    return Counter(s.n for s in series)
