"""Additional property-based tests: store, query, trends, monitor."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.avrank import AVRankSeries
from repro.core.monitor import StabilityCriteria, StabilityMonitor
from repro.core.trends import Trend, TrendParams, classify_trend
from repro.store.query import ReportQuery
from repro.store.reportstore import ReportStore
from repro.vt.clock import WINDOW_MINUTES
from repro.vt.reports import ScanReport, encode_labels

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def report_strategy(draw, sha=None):
    n = draw(st.integers(3, 12))
    labels = draw(st.lists(st.sampled_from([-1, 0, 1]),
                           min_size=n, max_size=n))
    scan_time = draw(st.integers(0, WINDOW_MINUTES - 1))
    sha = sha or draw(
        st.text(alphabet="0123456789abcdef", min_size=64, max_size=64)
    )
    return ScanReport(
        sha256=sha,
        file_type=draw(st.sampled_from(["Win32 EXE", "TXT", "PDF"])),
        scan_time=scan_time,
        positives=sum(1 for v in labels if v == 1),
        total=sum(1 for v in labels if v != -1),
        labels=encode_labels(labels),
        versions=tuple(range(n)),
        first_submission_date=draw(st.integers(-10**6, scan_time)),
        last_submission_date=scan_time,
        last_analysis_date=scan_time,
        times_submitted=draw(st.integers(1, 5)),
    )


ranks_strategy = st.lists(st.integers(0, 70), min_size=2, max_size=25)


def _series(ranks):
    return AVRankSeries(
        sha256="ef" * 32, file_type="TXT", fresh=True,
        times=tuple(range(0, len(ranks) * 1000, 1000)),
        ranks=tuple(ranks),
    )


# ---------------------------------------------------------------------------
# Store round-trips
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(st.lists(report_strategy(), min_size=1, max_size=25))
def test_store_preserves_every_report(reports):
    store = ReportStore(block_records=4)
    store.ingest_batch(reports)
    stored = sorted(
        (r.sha256, r.scan_time, r.positives, r.labels)
        for r in store.iter_reports()
    )
    original = sorted(
        (r.sha256, r.scan_time, r.positives, r.labels) for r in reports
    )
    assert stored == original


@settings(max_examples=15, deadline=None)
@given(st.lists(report_strategy(), min_size=1, max_size=15))
def test_store_save_load_round_trip(reports):
    import tempfile
    from pathlib import Path

    store = ReportStore(block_records=3)
    store.ingest_batch(reports)
    store.close()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "roundtrip.store"
        store.save(path)
        loaded = ReportStore.load(path)
    assert loaded.report_count == store.report_count
    assert set(loaded.samples()) == set(store.samples())


@settings(max_examples=20, deadline=None)
@given(st.lists(report_strategy(), min_size=1, max_size=20),
       st.integers(0, 30))
def test_query_partition_is_exhaustive(reports, threshold):
    store = ReportStore()
    store.ingest_batch(reports)
    q = ReportQuery(store)
    below = q.max_positives(max(0, threshold - 1)).count() if threshold else 0
    at_or_above = q.min_positives(threshold).count()
    assert below + at_or_above == store.report_count


# ---------------------------------------------------------------------------
# Trend classification invariants
# ---------------------------------------------------------------------------


@given(ranks_strategy)
def test_trend_is_total_function(ranks):
    assert classify_trend(_series(ranks)) in Trend


@given(ranks_strategy)
def test_flat_iff_constant(ranks):
    trend = classify_trend(_series(ranks))
    if len(set(ranks)) == 1:
        assert trend is Trend.FLAT
    else:
        assert trend is not Trend.FLAT


@given(ranks_strategy)
def test_trend_mirror_symmetry(ranks):
    """Negating the trajectory swaps GROWER and DECLINER, fixes others."""
    base = classify_trend(_series(ranks))
    peak = max(ranks)
    mirrored = classify_trend(_series([peak - r for r in ranks]))
    swap = {Trend.GROWER: Trend.DECLINER, Trend.DECLINER: Trend.GROWER}
    assert mirrored == swap.get(base, base)


@given(ranks_strategy)
def test_monotone_series_is_directional(ranks):
    ordered = sorted(ranks)
    if ordered[0] != ordered[-1]:
        assert classify_trend(_series(ordered)) is Trend.GROWER
        assert classify_trend(_series(ordered[::-1])) is Trend.DECLINER


# ---------------------------------------------------------------------------
# Stability monitor invariants
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 20), min_size=1, max_size=15))
def test_monitor_never_stable_before_min_reports(ranks):
    monitor = StabilityMonitor(
        criteria=StabilityCriteria(fluctuation=20, min_reports=len(ranks) + 1,
                                   min_days=0.0),
    )
    for i, rank in enumerate(ranks):
        report = ScanReport(
            sha256="ab" * 32, file_type="TXT", scan_time=i * 10_000,
            positives=rank, total=20,
            labels=encode_labels([1] * rank + [0] * (20 - rank)),
            versions=tuple(range(20)),
            last_analysis_date=i * 10_000,
        )
        assert monitor.observe(report) is False


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 5), min_size=3, max_size=15))
def test_monitor_constant_series_stabilizes(ranks):
    constant = [ranks[0]] * len(ranks)
    monitor = StabilityMonitor(
        criteria=StabilityCriteria(fluctuation=0, min_reports=2,
                                   min_days=0.0),
    )
    outcomes = []
    for i, rank in enumerate(constant):
        report = ScanReport(
            sha256="cd" * 32, file_type="TXT", scan_time=i * 10_000,
            positives=rank, total=5,
            labels=encode_labels([1] * rank + [0] * (5 - rank)),
            versions=tuple(range(5)),
            last_analysis_date=i * 10_000,
        )
        outcomes.append(monitor.observe(report))
    assert outcomes[-1] is True
    assert monitor.alerts == 0
