"""Unit tests for monthly shards (repro.store.shard)."""

import pytest

from repro.errors import ShardClosedError
from repro.store.shard import CompressedBlock, MonthlyShard


def _records(n: int) -> list[bytes]:
    return [f"record-{i:04d}".encode() * 3 for i in range(n)]


class TestCompressedBlock:
    def test_round_trip(self):
        records = _records(10)
        block = CompressedBlock.from_records(records)
        assert block.records() == records
        assert block.record_count == 10

    def test_compression_shrinks_repetitive_data(self):
        block = CompressedBlock.from_records([b"x" * 1000] * 20)
        assert block.compressed_bytes < block.raw_bytes / 10


class TestMonthlyShard:
    def test_append_returns_stable_addresses(self):
        shard = MonthlyShard(month=0, block_records=3)
        addresses = [shard.append(r, 100) for r in _records(7)]
        assert addresses == [(0, 0), (0, 1), (0, 2),
                             (1, 0), (1, 1), (1, 2),
                             (2, 0)]

    def test_blocks_freeze_at_block_records(self):
        shard = MonthlyShard(month=0, block_records=3)
        for r in _records(7):
            shard.append(r, 100)
        assert len(shard.blocks) == 2  # two frozen, one open buffer

    def test_record_at_spans_frozen_and_open(self):
        shard = MonthlyShard(month=0, block_records=3)
        records = _records(5)
        for r in records:
            shard.append(r, 100)
        assert shard.record_at(0, 1) == records[1]
        assert shard.record_at(1, 1) == records[4]  # still in buffer

    def test_record_at_out_of_range(self):
        shard = MonthlyShard(month=0, block_records=3)
        shard.append(b"x", 10)
        with pytest.raises(IndexError):
            shard.record_at(5, 0)
        with pytest.raises(IndexError):
            shard.record_at(0, 9)

    def test_iter_records_preserves_order(self):
        shard = MonthlyShard(month=0, block_records=2)
        records = _records(5)
        for r in records:
            shard.append(r, 100)
        assert list(shard.iter_records()) == records

    def test_flush_freezes_partial_buffer(self):
        shard = MonthlyShard(month=0, block_records=100)
        shard.append(b"a", 10)
        shard.flush()
        assert len(shard.blocks) == 1
        assert shard.blocks[0].record_count == 1

    def test_close_seals_shard(self):
        shard = MonthlyShard(month=0)
        shard.append(b"a", 10)
        shard.close()
        assert shard.closed
        with pytest.raises(ShardClosedError):
            shard.append(b"b", 10)

    def test_accounting(self):
        shard = MonthlyShard(month=2, block_records=2)
        for r in _records(4):
            shard.append(r, verbose_size=500)
        assert shard.report_count == 4
        assert shard.verbose_bytes == 2000
        assert shard.encoded_bytes == sum(len(r) for r in _records(4))
        assert shard.compressed_bytes > 0

    def test_open_buffer_counted_as_buffered_not_compressed(self):
        # Regression: the open buffer's raw record bytes used to be
        # reported as "compressed" size, skewing Table 2 ratios.
        shard = MonthlyShard(month=0, block_records=100)
        shard.append(b"z" * 50, 10)
        assert shard.compressed_bytes == 0
        assert shard.buffered_bytes == 50
        assert shard.stored_bytes == 50
        shard.flush()
        assert shard.buffered_bytes == 0
        assert shard.compressed_bytes > 0
        assert shard.stored_bytes == shard.compressed_bytes

    def test_generation_bumps_on_append_and_flush(self):
        shard = MonthlyShard(month=0, block_records=100)
        assert shard.generation == 0
        shard.append(b"a", 1)
        shard.append(b"b", 1)
        assert shard.generation == 2
        shard.flush()
        assert shard.generation == 3
        shard.flush()  # empty buffer: no mutation
        assert shard.generation == 3

    def test_buffered_records_is_a_snapshot(self):
        shard = MonthlyShard(month=0, block_records=100)
        shard.append(b"a", 1)
        snapshot = shard.buffered_records()
        shard.append(b"b", 1)
        assert snapshot == [b"a"]
        assert shard.buffered_records() == [b"a", b"b"]

    def test_iter_record_blocks_covers_frozen_and_open(self):
        shard = MonthlyShard(month=0, block_records=2)
        for r in (b"r0", b"r1", b"r2"):
            shard.append(r, 1)
        blocks = list(shard.iter_record_blocks())
        assert blocks == [(0, [b"r0", b"r1"]), (1, [b"r2"])]
