"""Tests for the calibration self-check (repro.analysis.calibration)."""

import pytest

from repro.analysis.calibration import (
    CalibrationReport,
    CalibrationTarget,
    assert_calibrated,
    calibration_report,
)


class TestTarget:
    def test_within(self):
        assert CalibrationTarget("x", 0.5, 0.52, 0.05, "s").within
        assert not CalibrationTarget("x", 0.5, 0.60, 0.05, "s").within

    def test_deviation(self):
        assert CalibrationTarget("x", 0.5, 0.4, 0.2, "s").deviation == (
            pytest.approx(0.1)
        )


class TestReport:
    def test_passed_iff_all_within(self):
        good = CalibrationTarget("a", 1.0, 1.0, 0.1, "s")
        bad = CalibrationTarget("b", 1.0, 2.0, 0.1, "s")
        assert CalibrationReport((good,)).passed
        assert not CalibrationReport((good, bad)).passed
        assert CalibrationReport((good, bad)).failures() == [bad]

    def test_render_marks_failures(self):
        bad = CalibrationTarget("broken-stat", 1.0, 2.0, 0.1, "s")
        text = CalibrationReport((bad,)).render()
        assert "OFF" in text
        assert "broken-stat" in text


class TestOnExperiment:
    def test_headline_stats_within_bands(self, experiment):
        """The shipped calibration must hold on the shared fixture."""
        report = calibration_report(experiment)
        failures = report.failures()
        assert not failures, report.render()

    def test_assert_calibrated_passes(self, experiment):
        report = assert_calibrated(experiment)
        assert report.passed

    def test_assert_calibrated_fail_callback(self, experiment):
        messages = []
        assert_calibrated(experiment, fail=messages.append)
        assert messages == []

    def test_report_covers_all_sections(self, experiment):
        report = calibration_report(experiment)
        sections = {t.section for t in report.targets}
        assert {"Obs 1", "Obs 2", "Obs 3", "Obs 6", "Obs 7",
                "Obs 8", "Obs 9", "7.1.1"} <= sections
        assert len(report.targets) >= 14
