"""The antivirus engine fleet behind the VirusTotal simulator.

VirusTotal aggregates verdicts from 70+ commercial engines.  The paper
treats each engine as a black box emitting ``malicious`` / ``benign`` /
``undetected`` per scan, and identifies three mechanisms behind label
dynamics (Observation 7): *engine latency* (signatures arrive after the
sample does), *engine update* (a verdict only changes when the engine ships
a new signature database) and *engine activity* (engines time out and
return nothing).  It further confirms (§7.2, after Sebastián et al.) that
groups of engines copy each other's labels.

This module models exactly those mechanisms.  Each :class:`Engine` carries:

* ``sensitivity`` — how likely it is to be among a sample's eventual
  detectors;
* per-category ``affinity`` — specialisation by file-type category (an
  EDR-style engine is PE-only, a mobile engine is Android-only);
* an update schedule — ``signature`` engines change verdicts only at
  update times, ``cloud`` engines can change between updates (their
  visible signature version moves rarely);
* ``activity`` — per-scan participation probability (the undetected/-1
  channel);
* ``churn`` — proneness to mid-observation verdict transitions, the knob
  behind Figure 10's flippy engines (Arcabit, F-Secure, Lionic) versus
  stable ones (Jiangmin, AhnLab);
* an optional copy rule — follower engines replicate a leader's verdict
  with high fidelity, optionally restricted to categories or exact file
  types (the paper's Lionic–VirIT correlation exists only for GZIP).

The default fleet (:func:`default_fleet`) contains 70 engines whose names
match the paper's figures so the correlation analyses recover the published
groups.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.vt import clock
from repro.vt.filetypes import CATEGORIES

#: Default per-scan participation probability.
DEFAULT_ACTIVITY = 0.985


@dataclass(frozen=True)
class CopyRule:
    """A label-copying relationship between a follower and its leader.

    ``categories``/``file_types`` restrict where the rule applies; when both
    are ``None`` the follower copies everywhere.  ``fidelity`` is the
    probability the follower reproduces the leader's verdict on a given
    sample (otherwise it falls back to its own independent behaviour).
    """

    leader: str
    fidelity: float = 0.985
    categories: frozenset[str] | None = None
    file_types: frozenset[str] | None = None

    def applies_to(self, file_type: str, category: str) -> bool:
        """Whether the rule is active for a sample of the given type."""
        if self.file_types is not None:
            return file_type in self.file_types
        if self.categories is not None:
            return category in self.categories
        return True


@dataclass(frozen=True)
class Engine:
    """Static behavioural parameters of one antivirus engine."""

    name: str
    #: Base weight for being among a sample's eventual detectors.
    sensitivity: float = 0.55
    #: Per-category affinity multipliers; categories absent default to 1.0.
    affinity: dict[str, float] = field(default_factory=dict)
    #: True for cloud/reputation engines whose verdicts can move between
    #: visible signature updates (the ~40 % of flips the paper found with
    #: no co-occurring engine update).
    cloud: bool = False
    #: Mean days between signature-database updates.
    update_interval_days: float = 2.0
    #: Mean days between *visible* engine-version bumps — the version
    #: field embedded in scan reports.  Real engines push DB deltas daily
    #: but bump the reported version far less often, which is why the
    #: paper finds only ~60 % of flips co-occurring with a version change
    #: (§5.5).  Defaults to a major release roughly monthly.
    version_interval_days: float = 28.0
    #: Per-scan participation probability (1 - timeout rate).
    activity: float = DEFAULT_ACTIVITY
    #: Proneness to mid-observation verdict churn (late FP episodes and
    #: late detections); 1.0 is fleet-typical.
    churn: float = 1.0
    #: Per-category churn multipliers (e.g. Arcabit on ELF).
    churn_affinity: dict[str, float] = field(default_factory=dict)
    #: Weight for false-positive episodes on benign samples.
    fp_proneness: float = 1.0
    #: Optional copy rule making this engine a follower of another.
    copies: CopyRule | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.activity <= 1.0:
            raise ConfigError(f"{self.name}: activity must be in (0,1]")
        if self.sensitivity < 0:
            raise ConfigError(f"{self.name}: sensitivity must be >= 0")
        if self.update_interval_days <= 0:
            raise ConfigError(f"{self.name}: update_interval_days must be > 0")
        for cat in list(self.affinity) + list(self.churn_affinity):
            if cat not in CATEGORIES:
                raise ConfigError(f"{self.name}: unknown category {cat!r}")

    def affinity_for(self, category: str) -> float:
        """Detection affinity multiplier for a file-type category."""
        return self.affinity.get(category, 1.0)

    def churn_for(self, category: str) -> float:
        """Churn multiplier for a file-type category."""
        return self.churn * self.churn_affinity.get(category, 1.0)


def _bitdefender_oem(name: str, sensitivity: float = 0.6) -> Engine:
    """An engine in the BitDefender OEM family (Tables 4-8 group)."""
    return Engine(
        name,
        sensitivity=sensitivity,
        update_interval_days=1.5,
        copies=CopyRule("BitDefender", fidelity=0.975),
    )


def _fleet_engines() -> list[Engine]:
    """The default 70-engine fleet, names matching the paper's figures."""
    pe_only = {c: 0.05 for c in CATEGORIES if c != "pe"}
    engines = [
        # --- Major independent engines -------------------------------
        Engine("Kaspersky", sensitivity=0.85, cloud=True,
               update_interval_days=45.0),
        Engine("Microsoft", sensitivity=0.82, cloud=True, churn=1.5,
               update_interval_days=20.0,
               affinity={"pe": 1.25, "image": 0.5}),
        Engine("Symantec", sensitivity=0.78, update_interval_days=1.0),
        Engine("Sophos", sensitivity=0.75, update_interval_days=1.5),
        Engine("ESET-NOD32", sensitivity=0.83, update_interval_days=1.0,
               copies=CopyRule("K7AntiVirus", fidelity=0.86,
                               categories=frozenset({"pe"}))),
        Engine("DrWeb", sensitivity=0.70, update_interval_days=1.5),
        Engine("Ikarus", sensitivity=0.66, update_interval_days=2.0,
               fp_proneness=1.6),
        Engine("McAfee", sensitivity=0.74, update_interval_days=1.5),
        Engine("McAfee-GW-Edition", sensitivity=0.70,
               update_interval_days=1.5,
               copies=CopyRule("McAfee", fidelity=0.90,
                               categories=frozenset({"android"}))),
        Engine("Fortinet", sensitivity=0.72, update_interval_days=1.5),
        Engine("Cyren", sensitivity=0.62, update_interval_days=2.0,
               fp_proneness=1.3,
               copies=CopyRule("Fortinet", fidelity=0.92,
                               categories=frozenset({"pe"}))),
        Engine("F-Secure", sensitivity=0.68, cloud=True, churn=2.2,
               update_interval_days=25.0),
        Engine("Panda", sensitivity=0.60, cloud=True,
               update_interval_days=30.0),
        Engine("Comodo", sensitivity=0.58, update_interval_days=2.5),
        Engine("Malwarebytes", sensitivity=0.55, cloud=True,
               update_interval_days=25.0, affinity={"pe": 1.2}),
        # --- BitDefender OEM family (Tables 4-8, Group "MicroWorld-
        #     eScan / BitDefender / GData / FireEye / MAX / ALYac /
        #     Ad-Aware / Emsisoft") --------------------------------------
        Engine("BitDefender", sensitivity=0.84, cloud=True,
               update_interval_days=40.0),
        _bitdefender_oem("MicroWorld-eScan"),
        _bitdefender_oem("GData", sensitivity=0.65),
        _bitdefender_oem("FireEye", sensitivity=0.66),
        _bitdefender_oem("MAX"),
        _bitdefender_oem("ALYac"),
        _bitdefender_oem("Ad-Aware"),
        _bitdefender_oem("Emsisoft", sensitivity=0.64),
        # Arcabit is BitDefender-based only for Android in the paper's
        # Appendix; elsewhere it is independent and notoriously flippy on
        # ELF (Figure 10: 25.8 % flip ratio on ELF executables).
        Engine("Arcabit", sensitivity=0.58, update_interval_days=2.0,
               churn=2.5, churn_affinity={"elf": 4.0, "android": 0.05},
               fp_proneness=1.8,
               copies=CopyRule("BitDefender", fidelity=0.90,
                               categories=frozenset({"android"}))),
        # --- Avast family --------------------------------------------
        Engine("Avast", sensitivity=0.80, update_interval_days=1.0),
        Engine("AVG", sensitivity=0.79, update_interval_days=1.0,
               copies=CopyRule("Avast", fidelity=0.985)),
        Engine("Avast-Mobile", sensitivity=0.55, update_interval_days=2.0,
               affinity={"android": 1.6, "pe": 0.02, "elf": 0.05,
                         "document": 0.05, "web": 0.05, "script": 0.05,
                         "archive": 0.05, "image": 0.02},
               # Copies Avast directly (AVG is itself an Avast follower,
               # and copy chains are capped at depth 1); the paper's
               # AVG / Avast-Mobile DEX correlation emerges transitively.
               copies=CopyRule("Avast", fidelity=0.96,
                               categories=frozenset({"android"}))),
        # --- Next-gen / ML engines (Paloalto-APEX pair: rho 0.9933) ---
        Engine("Paloalto", sensitivity=0.60, cloud=True,
               update_interval_days=30.0, affinity=dict(pe_only)),
        Engine("APEX", sensitivity=0.58, cloud=True,
               update_interval_days=30.0, affinity=dict(pe_only),
               copies=CopyRule("Paloalto", fidelity=0.993)),
        Engine("Webroot", sensitivity=0.56, cloud=True,
               update_interval_days=30.0, affinity=dict(pe_only)),
        Engine("CrowdStrike", sensitivity=0.57, cloud=True,
               update_interval_days=30.0, affinity=dict(pe_only),
               copies=CopyRule("Webroot", fidelity=0.975)),
        Engine("Elastic", sensitivity=0.55, cloud=True,
               update_interval_days=30.0, affinity=dict(pe_only)),
        Engine("SentinelOne", sensitivity=0.58, cloud=True,
               update_interval_days=30.0, affinity=dict(pe_only)),
        Engine("Cylance", sensitivity=0.54, cloud=True,
               update_interval_days=30.0, affinity=dict(pe_only),
               fp_proneness=1.7),
        Engine("Acronis", sensitivity=0.40, cloud=True,
               update_interval_days=30.0, affinity=dict(pe_only)),
        # --- Avira family (Cynet copies Avira except on PE, matching
        #     the paper's Appendix: strong overall but not on Win32 EXE) -
        Engine("Avira", sensitivity=0.81, update_interval_days=1.0),
        Engine("Cynet", sensitivity=0.62, cloud=True,
               update_interval_days=20.0,
               copies=CopyRule("Avira", fidelity=0.97,
                               categories=frozenset(
                                   {"android", "document", "web", "script",
                                    "archive", "image", "elf", "other"}))),
        # --- The web cluster (HTML Table 6 group 5) ------------------
        Engine("Rising", sensitivity=0.60, update_interval_days=2.0,
               copies=CopyRule("Avira", fidelity=0.88,
                               categories=frozenset({"web"}))),
        Engine("CAT-QuickHeal", sensitivity=0.58, update_interval_days=2.0,
               copies=CopyRule("Avira", fidelity=0.86,
                               categories=frozenset({"web"}))),
        Engine("NANO-Antivirus", sensitivity=0.57, update_interval_days=2.0,
               fp_proneness=1.4,
               copies=CopyRule("Avira", fidelity=0.87,
                               categories=frozenset({"web"}))),
        Engine("AhnLab-V3", sensitivity=0.63, update_interval_days=1.5,
               churn=0.35,
               copies=CopyRule("Avira", fidelity=0.86,
                               categories=frozenset({"web"}))),
        # --- Small pairs from the paper's figures --------------------
        Engine("K7AntiVirus", sensitivity=0.66, update_interval_days=1.5),
        Engine("K7GW", sensitivity=0.65, update_interval_days=1.5,
               copies=CopyRule("K7AntiVirus", fidelity=0.98)),
        Engine("TrendMicro", sensitivity=0.72, update_interval_days=1.5),
        Engine("TrendMicro-HouseCall", sensitivity=0.70,
               update_interval_days=1.5,
               copies=CopyRule("TrendMicro", fidelity=0.97)),
        Engine("F-Prot", sensitivity=0.52, update_interval_days=3.0),
        Engine("Babable", sensitivity=0.50, update_interval_days=3.0,
               copies=CopyRule("F-Prot", fidelity=0.97)),
        Engine("Alibaba", sensitivity=0.50, cloud=True,
               update_interval_days=30.0,
               copies=CopyRule("Webroot", fidelity=0.90,
                               categories=frozenset({"script"}))),
        # Lionic-VirIT correlate only on GZIP (paper §7.2.2).
        Engine("VirIT", sensitivity=0.48, update_interval_days=3.0),
        Engine("Lionic", sensitivity=0.55, update_interval_days=2.0,
               churn=2.0, fp_proneness=1.5,
               copies=CopyRule("VirIT", fidelity=0.92,
                               file_types=frozenset({"GZIP"}))),
        # --- Stable engines (Figure 10: few flips) -------------------
        Engine("Jiangmin", sensitivity=0.52, update_interval_days=4.0,
               churn=0.15),
        Engine("AhnLab", sensitivity=0.60, update_interval_days=2.0,
               churn=0.2),
        # --- Remaining independents to fill the fleet to 70 ----------
        Engine("ClamAV", sensitivity=0.45, update_interval_days=2.0),
        Engine("VBA32", sensitivity=0.50, update_interval_days=3.0),
        Engine("Zillya", sensitivity=0.48, update_interval_days=3.0),
        Engine("Tencent", sensitivity=0.62, update_interval_days=1.5),
        Engine("Baidu", sensitivity=0.45, update_interval_days=5.0),
        Engine("Qihoo-360", sensitivity=0.64, update_interval_days=1.5),
        Engine("Bkav", sensitivity=0.42, update_interval_days=4.0,
               fp_proneness=1.5),
        Engine("ViRobot", sensitivity=0.46, update_interval_days=3.0),
        Engine("TotalDefense", sensitivity=0.40, update_interval_days=4.0),
        Engine("SUPERAntiSpyware", sensitivity=0.38,
               update_interval_days=4.0, affinity={"pe": 1.1}),
        Engine("Yandex", sensitivity=0.52, update_interval_days=2.5),
        Engine("eGambit", sensitivity=0.40, cloud=True,
               update_interval_days=30.0, affinity=dict(pe_only)),
        Engine("MaxSecure", sensitivity=0.45, update_interval_days=3.0,
               fp_proneness=1.6),
        Engine("Sangfor", sensitivity=0.55, cloud=True,
               update_interval_days=25.0, affinity={"pe": 1.15}),
        Engine("Zoner", sensitivity=0.35, update_interval_days=5.0),
        Engine("TACHYON", sensitivity=0.42, update_interval_days=4.0),
        Engine("Gridinsoft", sensitivity=0.44, update_interval_days=3.0,
               fp_proneness=1.4),
        Engine("Kingsoft", sensitivity=0.40, update_interval_days=4.0),
    ]
    return engines


class EngineFleet:
    """An immutable, ordered collection of engines plus update schedules.

    The fleet fixes the engine order used throughout the simulator: scan
    reports store per-engine labels as a dense vector indexed by this
    order, and the analysis layer maps names to columns through
    :attr:`index`.

    Update schedules are generated once per fleet from ``seed``: signature
    engines update every ~1-3 days, cloud engines bump their *visible*
    version only monthly.  Schedules extend ~600 days before the collection
    window so samples first seen before the window have well-defined
    versions.
    """

    #: How far before the collection window update schedules extend (min).
    SCHEDULE_BACKFILL = clock.minutes(days=600)
    #: How far past the window update schedules extend (minutes).
    SCHEDULE_OVERRUN = clock.minutes(days=60)

    def __init__(self, engines: list[Engine], seed: int = 0) -> None:
        if len({e.name for e in engines}) != len(engines):
            raise ConfigError("duplicate engine names in fleet")
        self.engines: tuple[Engine, ...] = tuple(engines)
        self.names: tuple[str, ...] = tuple(e.name for e in engines)
        self.index: dict[str, int] = {n: i for i, n in enumerate(self.names)}
        self.seed = seed
        self._validate_copy_rules()
        self._schedules: list[list[int]] = [
            self._build_schedule(e) for e in self.engines
        ]
        # Visible version bumps are a subsample of the delivery schedule:
        # every k-th DB push ships as a new engine version.
        self._version_schedules: list[list[int]] = []
        for engine, schedule in zip(self.engines, self._schedules, strict=False):
            stride = max(1, round(engine.version_interval_days
                                  / engine.update_interval_days))
            self._version_schedules.append(schedule[::stride])
        # Decision order: leaders before followers, so a follower can read
        # its leader's already-computed verdict.
        followers = [i for i, e in enumerate(self.engines) if e.copies]
        leaders = [i for i, e in enumerate(self.engines) if not e.copies]
        self.decision_order: tuple[int, ...] = tuple(leaders + followers)

    def __len__(self) -> int:
        return len(self.engines)

    def __iter__(self):
        return iter(self.engines)

    def __getitem__(self, key: int | str) -> Engine:
        if isinstance(key, str):
            return self.engines[self.index[key]]
        return self.engines[key]

    def _validate_copy_rules(self) -> None:
        for engine in self.engines:
            rule = engine.copies
            if rule is None:
                continue
            if rule.leader not in self.index:
                raise ConfigError(
                    f"{engine.name} copies unknown engine {rule.leader!r}"
                )
            leader = self[rule.leader]
            if leader.copies is not None:
                raise ConfigError(
                    f"copy chain deeper than 1: {engine.name} -> "
                    f"{rule.leader} -> {leader.copies.leader}"
                )
            if not 0.0 <= rule.fidelity <= 1.0:
                raise ConfigError(f"{engine.name}: fidelity must be in [0,1]")

    def _build_schedule(self, engine: Engine) -> list[int]:
        rng = random.Random(f"fleet:{self.seed}:updates:{engine.name}")
        mean = clock.minutes(days=engine.update_interval_days)
        floor = clock.minutes(hours=6)
        t = -self.SCHEDULE_BACKFILL
        schedule = []
        horizon = clock.WINDOW_MINUTES + self.SCHEDULE_OVERRUN
        while t < horizon:
            t += max(floor, int(rng.expovariate(1.0 / mean)))
            schedule.append(t)
        return schedule

    def update_schedule(self, name: str) -> list[int]:
        """All update timestamps (minutes) for the named engine."""
        return list(self._schedules[self.index[name]])

    def version_at(self, engine_idx: int, timestamp: int) -> int:
        """Visible engine version at ``timestamp``.

        Versions are consecutive integers counting visible version bumps;
        reports embed them so the analysis layer can check whether a flip
        co-occurred with an engine update (§5.5).  This tracks the
        *visible* schedule — a subsample of the faster DB-push schedule
        that actually delivers verdict changes.
        """
        return bisect_right(self._version_schedules[engine_idx], timestamp)

    def version_schedule(self, name: str) -> list[int]:
        """All visible version-bump timestamps for the named engine."""
        return list(self._version_schedules[self.index[name]])

    def next_update_after(self, engine_idx: int, timestamp: int) -> int:
        """First update time strictly after ``timestamp``.

        Used to model signature-channel delivery: a latent detection only
        becomes visible once the engine ships its next update.
        """
        schedule = self._schedules[engine_idx]
        i = bisect_right(schedule, timestamp)
        if i < len(schedule):
            return schedule[i]
        # Past the schedule horizon; deliver immediately.
        return timestamp

    def detection_weights(self, category: str) -> list[float]:
        """Per-engine weights for being among a sample's detectors."""
        return [e.sensitivity * e.affinity_for(category) for e in self.engines]


def default_fleet(seed: int = 0, copy_rules: bool = True) -> EngineFleet:
    """Build the default 70-engine fleet with the given schedule seed.

    ``copy_rules=False`` strips every copy relationship, yielding a fleet
    of fully independent engines — the ablation baseline for the §7.2
    correlation analysis (without copying, no strong correlations should
    survive).
    """
    engines = _fleet_engines()
    if not copy_rules:
        engines = [replace(e, copies=None) for e in engines]
    fleet = EngineFleet(engines, seed=seed)
    if len(fleet) != 70:
        raise AssertionError(f"default fleet must have 70 engines, has {len(fleet)}")
    return fleet
