"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


@pytest.fixture()
def run_cli(capsys):
    def run(*argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out

    return run


class TestCommands:
    def test_overview(self, run_cli):
        code, out = run_cli("--samples", "300", "--seed", "2", "overview")
        assert code == 0
        assert "05/2021 Reports" in out
        assert "Figure 1" in out

    def test_dynamics(self, run_cli):
        code, out = run_cli("--samples", "300", "--seed", "2", "dynamics")
        assert code == 0
        assert "Observation 1" in out
        assert "Figure 8" in out

    def test_stabilization(self, run_cli):
        code, out = run_cli("--samples", "300", "--seed", "2",
                            "stabilization")
        assert code == 0
        assert "Observation 8" in out
        assert "Figure 9" in out

    def test_engines(self, run_cli):
        code, out = run_cli("--samples", "300", "--seed", "2", "engines")
        assert code == 0
        assert "Figure 10" in out
        assert "Figure 11" in out

    def test_generate_and_reload(self, run_cli, tmp_path):
        path = tmp_path / "saved.store"
        code, out = run_cli("--samples", "200", "--seed", "3",
                            "generate", str(path))
        assert code == 0
        assert path.exists()
        code, out = run_cli("--store", str(path), "overview")
        assert code == 0
        assert "Total # Reports" in out

    def test_paper_scenario_flag(self, run_cli):
        code, out = run_cli("--samples", "300", "--seed", "2",
                            "--scenario", "paper", "overview")
        assert code == 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestNewCommands:
    def test_calibrate_command(self, run_cli):
        code, out = run_cli("--samples", "800", "--seed", "5", "calibrate")
        assert "calibration report" in out
        assert code in (0, 1)  # small-scale noise may trip a band

    def test_report_command(self, run_cli, tmp_path):
        path = tmp_path / "repro-report.md"
        code, out = run_cli("--samples", "400", "--seed", "5",
                            "report", str(path))
        assert code == 0
        assert path.exists()
        text = path.read_text()
        assert "## Calibration vs paper" in text
        assert "## Individual engines" in text


class TestCollect:
    def test_collect_writes_working_directory(self, run_cli, tmp_path):
        code, out = run_cli("--samples", "200", "--seed", "2",
                            "collect", str(tmp_path), "--until-days", "15")
        assert code == 0
        assert "collection completed" in out
        assert (tmp_path / "store.rpr").exists()
        assert (tmp_path / "checkpoint.json").exists()

    def test_collect_chaos_crash_then_resume(self, run_cli, tmp_path):
        code, out = run_cli("--samples", "200", "--seed", "2",
                            "collect", str(tmp_path), "--chaos",
                            "--until-days", "16", "--crash-at-days", "8")
        assert code == 0
        assert "crashed (simulated)" in out

        code, out = run_cli("--samples", "200", "--seed", "2",
                            "collect", str(tmp_path), "--chaos",
                            "--until-days", "16", "--resume")
        assert code == 0
        assert "collection completed" in out
        assert "UNRECOVERED" not in out
