"""Tests for the fault-injection layer (repro.faults)."""

import pytest

from repro.errors import (
    ConfigError,
    CorruptRecordError,
    ServiceUnavailableError,
    TransientError,
)
from repro.faults import (
    ChaosClient,
    ChaosFeed,
    ChaosStore,
    FaultPlan,
    OutageWindow,
    chaos_wrap,
    corrupt_payload,
    corrupt_report,
    standard_chaos_plan,
)
from repro.store import codec
from repro.store.reportstore import ReportStore
from repro.vt.api import VTClient
from repro.vt.feed import PremiumFeed
from repro.vt.samples import Sample, sha256_of
from repro.vt.service import VirusTotalService

from conftest import make_report


@pytest.fixture()
def service():
    return VirusTotalService(seed=8)


def _upload(service, token, when):
    s = Sample(sha256=sha256_of(token), file_type="TXT",
               malicious=False, first_seen=when)
    return service.upload(s, when)


class TestOutageWindow:
    def test_contains(self):
        window = OutageWindow(10, 20)
        assert 10 in window and 19 in window
        assert 9 not in window and 20 not in window

    def test_minutes(self):
        assert OutageWindow(10, 25).minutes == 15

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            OutageWindow(20, 10)
        with pytest.raises(ConfigError):
            OutageWindow(-1, 10)


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(transient_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(corrupt_rate=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(max_consecutive_failures=0)

    def test_overlapping_outages_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(outages=(OutageWindow(0, 100), OutageWindow(50, 150)))

    def test_outages_sorted(self):
        plan = FaultPlan(outages=(OutageWindow(200, 300), OutageWindow(0, 100)))
        assert [w.start for w in plan.outages] == [0, 200]

    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=5, transient_rate=0.3, duplicate_rate=0.3,
                         corrupt_rate=0.3)
        first = [(plan.poll_fails(m, 0), plan.duplicates("ab" * 32, m),
                  plan.corrupts("ab" * 32, m)) for m in range(500)]
        second = [(plan.poll_fails(m, 0), plan.duplicates("ab" * 32, m),
                   plan.corrupts("ab" * 32, m)) for m in range(500)]
        assert first == second
        assert any(any(t) for t in first)  # the plan actually fires

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, transient_rate=0.3)
        b = FaultPlan(seed=2, transient_rate=0.3)
        assert ([a.poll_fails(m, 0) for m in range(500)]
                != [b.poll_fails(m, 0) for m in range(500)])

    def test_consecutive_failure_cap_guarantees_progress(self):
        plan = FaultPlan(transient_rate=1.0, store_failure_rate=1.0,
                         max_consecutive_failures=2)
        assert plan.poll_fails(7, 0) and plan.poll_fails(7, 1)
        assert not plan.poll_fails(7, 2)
        assert not plan.store_write_fails("ab" * 32, 7, 2)
        assert not plan.api_fails("report", "ab" * 32, 2)

    def test_disabled(self):
        assert FaultPlan().disabled
        assert not FaultPlan(transient_rate=0.1).disabled
        assert not FaultPlan(outages=(OutageWindow(0, 10),)).disabled
        assert not standard_chaos_plan().disabled

    def test_in_outage(self):
        plan = FaultPlan(outages=(OutageWindow(100, 200),))
        assert plan.in_outage(150)
        assert not plan.in_outage(99) and not plan.in_outage(200)


class TestInjectors:
    def test_corrupt_payload_always_undecodable(self):
        report = make_report(labels=[1, 0, -1, 0, 1])
        record = codec.encode_report(report)
        plan = FaultPlan(seed=0)
        for i in range(200):
            mangled = corrupt_payload(record, plan.corruption_rng("x", i))
            with pytest.raises(CorruptRecordError):
                codec.decode_report(mangled)

    def test_corrupt_report_is_deterministic(self):
        report = make_report()
        plan = FaultPlan(seed=3)
        a = corrupt_report(report, plan.corruption_rng(report.sha256, 5))
        b = corrupt_report(report, plan.corruption_rng(report.sha256, 5))
        assert a == b


class TestChaosFeed:
    def _feed(self, service, plan):
        return ChaosFeed(PremiumFeed(service), plan)

    def test_outage_loses_reports_and_raises(self, service):
        plan = FaultPlan(outages=(OutageWindow(100, 200),))
        feed = self._feed(service, plan)
        feed.attach()
        _upload(service, "a", 150)
        with pytest.raises(ServiceUnavailableError):
            feed.poll(until_minute=151)
        assert feed.reports_lost_to_outage == 1
        assert feed.outage_polls == 1
        assert feed.pending() == 0  # the buffered copy is gone

    def test_outage_spares_later_reports(self, service):
        plan = FaultPlan(outages=(OutageWindow(100, 200),))
        feed = self._feed(service, plan)
        feed.attach()
        _upload(service, "a", 150)
        _upload(service, "b", 250)
        with pytest.raises(ServiceUnavailableError):
            feed.poll(until_minute=151)
        batch = feed.poll(until_minute=251)
        assert [r.scan_time for r in batch] == [250]

    def test_transient_failures_then_success(self, service):
        plan = FaultPlan(transient_rate=1.0, max_consecutive_failures=2)
        feed = self._feed(service, plan)
        feed.attach()
        _upload(service, "a", 50)
        for _ in range(2):
            with pytest.raises(TransientError):
                feed.poll(until_minute=51)
        batch = feed.poll(until_minute=51)  # third attempt must succeed
        assert len(batch) == 1
        assert feed.transient_failures == 2

    def test_transient_status_codes(self, service):
        plan = FaultPlan(transient_rate=1.0, max_consecutive_failures=2)
        feed = self._feed(service, plan)
        feed.attach()
        with pytest.raises(TransientError) as first:
            feed.poll(until_minute=1)
        with pytest.raises(TransientError) as second:
            feed.poll(until_minute=1)
        assert first.value.status == 429
        assert second.value.status == 500

    def test_duplicates_are_appended(self, service):
        plan = FaultPlan(duplicate_rate=1.0)
        feed = self._feed(service, plan)
        feed.attach()
        _upload(service, "a", 50)
        batch = feed.poll(until_minute=51)
        assert len(batch) == 2 and batch[0] == batch[1]
        assert feed.reports_duplicated == 1

    def test_corruption_delivers_bytes(self, service):
        plan = FaultPlan(corrupt_rate=1.0)
        feed = self._feed(service, plan)
        feed.attach()
        _upload(service, "a", 50)
        batch = feed.poll(until_minute=51)
        assert len(batch) == 1 and isinstance(batch[0], bytes)
        with pytest.raises(CorruptRecordError):
            codec.decode_report(batch[0])
        assert feed.reports_corrupted == 1

    def test_drops_are_counted(self, service):
        plan = FaultPlan(drop_rate=1.0)
        feed = self._feed(service, plan)
        feed.attach()
        _upload(service, "a", 50)
        assert feed.poll(until_minute=51) == []
        assert feed.reports_dropped == 1

    def test_passthrough_surface(self, service):
        feed = self._feed(service, FaultPlan(duplicate_rate=0.5))
        with feed:
            _upload(service, "a", 50)
            assert feed.pending() == 1
        assert feed.cursor == 0
        assert feed.batches_served == 0


class TestChaosStore:
    def test_write_failures_then_success(self):
        plan = FaultPlan(store_failure_rate=1.0, max_consecutive_failures=2)
        store = ChaosStore(ReportStore(), plan)
        report = make_report()
        for _ in range(2):
            with pytest.raises(TransientError):
                store.ingest_unique(report)
        assert store.ingest_unique(report) is True
        # A later write of the same key starts a fresh failure sequence…
        for _ in range(2):
            with pytest.raises(TransientError):
                store.ingest_unique(report)
        # …but once through, the replay is recognised as a duplicate.
        assert store.ingest_unique(report) is False
        assert store.write_failures == 4
        assert store.report_count == 1  # delegation works

    def test_wrapped_exposes_the_real_store(self):
        inner = ReportStore()
        assert ChaosStore(inner, FaultPlan(store_failure_rate=0.1)).wrapped is inner


class TestChaosClient:
    def test_report_endpoint_fails_transiently(self, service):
        plan = FaultPlan(transient_rate=1.0, max_consecutive_failures=1)
        report = _upload(service, "a", 50)
        client = ChaosClient(VTClient(service, premium=True), plan)
        with pytest.raises(TransientError):
            client.report(report.sha256, 60)
        assert client.report(report.sha256, 60).sha256 == report.sha256
        assert client.report.transient_failures == 1


class TestChaosWrap:
    def test_disabled_plan_returns_originals(self, service):
        feed = PremiumFeed(service)
        store = ReportStore()
        client = VTClient(service, premium=True)
        for plan in (None, FaultPlan()):
            assert chaos_wrap(feed, store, client, plan) == (feed, store, client)

    def test_enabled_plan_wraps(self, service):
        feed = PremiumFeed(service)
        store = ReportStore()
        client = VTClient(service, premium=True)
        cfeed, cstore, cclient = chaos_wrap(feed, store, client,
                                            standard_chaos_plan())
        assert isinstance(cfeed, ChaosFeed)
        assert isinstance(cstore, ChaosStore)
        assert isinstance(cclient, ChaosClient)

    def test_none_client_stays_none(self, service):
        _, _, cclient = chaos_wrap(PremiumFeed(service), ReportStore(), None,
                                   standard_chaos_plan())
        assert cclient is None
