"""Unit tests for the premium feed (repro.vt.feed)."""

import pytest

from repro.errors import PermissionError_
from repro.vt import clock
from repro.vt.feed import PremiumFeed
from repro.vt.samples import Sample, sha256_of
from repro.vt.service import VirusTotalService


@pytest.fixture()
def service():
    return VirusTotalService(seed=8)


def _upload(service, token, when):
    s = Sample(
        sha256=sha256_of(token),
        file_type="TXT",
        malicious=False,
        first_seen=when,
    )
    return service.upload(s, when)


class TestLifecycle:
    def test_feed_requires_premium(self, service):
        with pytest.raises(PermissionError_):
            PremiumFeed(service, premium=False)

    def test_detached_feed_sees_nothing(self, service):
        feed = PremiumFeed(service)
        _upload(service, "a", 100)
        assert feed.pending() == 0

    def test_attach_detach(self, service):
        feed = PremiumFeed(service)
        feed.attach()
        _upload(service, "a", 100)
        feed.detach()
        _upload(service, "b", 200)
        assert feed.pending() == 1

    def test_context_manager(self, service):
        with PremiumFeed(service) as feed:
            _upload(service, "a", 100)
            assert feed.pending() == 1
        _upload(service, "b", 200)
        assert feed.pending() == 1

    def test_double_attach_is_idempotent(self, service):
        feed = PremiumFeed(service)
        feed.attach()
        feed.attach()
        _upload(service, "a", 100)
        assert feed.pending() == 1


class TestPolling:
    def test_poll_drains_buffer(self, service):
        with PremiumFeed(service) as feed:
            _upload(service, "a", 100)
            _upload(service, "b", 150)
            batch = feed.poll()
            assert len(batch) == 2
            assert feed.pending() == 0

    def test_poll_with_minute_bound(self, service):
        with PremiumFeed(service) as feed:
            _upload(service, "a", 100)
            _upload(service, "b", 200)
            early = feed.poll(until_minute=150)
            assert [r.scan_time for r in early] == [100]
            assert feed.pending() == 1

    def test_counters(self, service):
        with PremiumFeed(service) as feed:
            _upload(service, "a", 100)
            feed.poll()
            assert feed.batches_served == 1
            assert feed.reports_served == 1


class TestMinuteBatches:
    def test_batches_grouped_by_minute(self, service):
        with PremiumFeed(service) as feed:
            _upload(service, "a", 100)
            _upload(service, "b", 100)
            _upload(service, "c", 105)
            batches = list(feed.minute_batches())
        assert [(m, len(b)) for m, b in batches] == [(100, 2), (105, 1)]

    def test_batches_drain_the_buffer(self, service):
        with PremiumFeed(service) as feed:
            _upload(service, "a", 100)
            list(feed.minute_batches())
            assert feed.pending() == 0

    def test_out_of_order_reports_detected(self, service):
        feed = PremiumFeed(service)
        feed.attach()
        _upload(service, "a", clock.minutes(days=2))
        _upload(service, "b", clock.minutes(days=1))
        with pytest.raises(AssertionError):
            list(feed.minute_batches())
