"""§8 "Measurement Time Window": gap growth with longer observation.

Paper: extending the scan window for first-month samples from one month
to three grew the AV-Rank gap for 8.6 % of them, and the gap distribution
keeps shifting as the window lengthens — the case for 14-month
measurement campaigns.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.windows import gap_growth_curve, window_sensitivity

from conftest import run_once, say


def test_window_sensitivity(benchmark, bench_data):
    result = run_once(
        benchmark,
        partial(window_sensitivity, bench_data.dataset_s,
                30.0, 90.0, False),
    )
    curve = gap_growth_curve(bench_data.dataset_s, first_month_only=False)

    say()
    say("Measurement-window sensitivity (paper §8)")
    say(f"  samples comparable at 30 vs 90 days: "
          f"{result.n_comparable:,}")
    say(f"  gap grew with the longer window    : "
          f"{result.grew_fraction:.1%} (paper: 8.6% for 1->3 months)")
    say(f"  mean gap: {result.mean_gap_short:.2f} (30d) -> "
          f"{result.mean_gap_long:.2f} (90d)")
    say("  mean measurable gap by window length:")
    for window, gap in curve:
        say(f"    {window:5.0f} days: {gap:6.2f}")

    # A nontrivial share of samples keeps growing past one month.
    assert 0.01 < result.grew_fraction < 0.50
    assert result.mean_gap_long >= result.mean_gap_short
    # The curve keeps rising across the sweep.
    assert curve[-1][1] > curve[0][1]
