"""Figure 8 / Observation 6: white/gray/black fractions vs threshold.

Paper shapes: the gray fraction never exceeds ~15 % (threshold labelling
tolerates label dynamics); overall it rises then falls with t (max 14.92 %
at t = 24, min 3.82 % at t = 45, below 10 % for t in 1-11 and 28-50 in the
paper); for PE files it *grows* with t (max 16.41 % at t = 50, below 10 %
through t = 24), so the PE-safe range is low thresholds — the paper
recommends 1-24 for PE.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.dynamics import threshold_impact
from repro.analysis.rendering import render_fig8
from repro.core.recommend import recommend_threshold_ranges

from conftest import run_once, say


def test_fig8_threshold_categories(benchmark, bench_data):
    impact = run_once(
        benchmark, partial(threshold_impact, bench_data.dataset_s)
    )
    say()
    say(render_fig8(impact))

    overall_gray = [c.gray_fraction for c in impact.overall]
    pe_gray = [c.gray_fraction for c in impact.pe_only]

    # Bounded gray fractions: thresholding tolerates the dynamics.
    assert max(overall_gray) < 0.30

    # Overall: low thresholds (3-11) are safe; the curve then rises and
    # falls again toward t=50.
    assert max(overall_gray[2:11]) < 0.12
    peak_t = overall_gray.index(max(overall_gray)) + 1
    assert 12 <= peak_t <= 45
    assert overall_gray[49] < max(overall_gray)

    # PE: gray grows with t, staying small through ~20 (paper: <10 %
    # through 24) and peaking high.
    assert max(pe_gray[2:18]) < 0.12
    pe_peak_t = pe_gray.index(max(pe_gray)) + 1
    assert pe_peak_t >= 25
    assert max(pe_gray) > max(pe_gray[:18])

    # A low recommended range must exist for PE, as in the paper.
    ranges = recommend_threshold_ranges(impact.pe_only, gray_limit=0.12)
    assert ranges, "no safe PE threshold range found"
    assert ranges[0].low <= 3
    say(f"recommended PE threshold ranges: "
          f"{', '.join(str(r) for r in ranges)} (paper: 1-24)")
