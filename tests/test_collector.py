"""Tests for the resilient collection pipeline (repro.collect)."""

import json
import random

import pytest

from repro.collect import (
    BackoffPolicy,
    Checkpoint,
    DeadLetterQueue,
    FeedCollector,
    load_checkpoint,
    save_checkpoint,
)
from repro.errors import CheckpointError, CollectError, ConfigError, TransientError
from repro.store import codec
from repro.store.reportstore import ReportStore
from repro.vt.api import VTClient
from repro.vt.feed import FeedArchive, PremiumFeed
from repro.vt.samples import Sample, sha256_of
from repro.vt.service import VirusTotalService

from conftest import make_report


@pytest.fixture()
def service():
    return VirusTotalService(seed=8)


def _upload(service, token, when):
    s = Sample(sha256=sha256_of(token), file_type="TXT",
               malicious=False, first_seen=when)
    return service.upload(s, when)


class TestBackoffPolicy:
    def test_exponential_growth_capped(self):
        policy = BackoffPolicy(base_minutes=1, factor=2, max_minutes=8,
                               jitter=0.0)
        rng = random.Random(0)
        assert [policy.delay(a, rng) for a in range(5)] == [1, 2, 4, 8, 8]

    def test_jitter_bounds(self):
        policy = BackoffPolicy(base_minutes=4, factor=1, jitter=0.25)
        rng = random.Random(1)
        for _ in range(200):
            assert 3.0 <= policy.delay(0, rng) <= 5.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            BackoffPolicy(base_minutes=0)
        with pytest.raises(ConfigError):
            BackoffPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            BackoffPolicy(jitter=1.0)


class TestCheckpoint:
    def test_add_gap_merges_adjacent(self):
        ckpt = Checkpoint()
        ckpt.add_gap(10, 11)
        ckpt.add_gap(11, 12)
        ckpt.add_gap(20, 25)
        assert ckpt.gaps == [(10, 12), (20, 25)]
        assert ckpt.gap_minutes == 7

    def test_add_gap_merges_overlap(self):
        ckpt = Checkpoint()
        ckpt.add_gap(10, 20)
        ckpt.add_gap(15, 30)
        assert ckpt.gaps == [(10, 30)]

    def test_empty_gap_ignored(self):
        ckpt = Checkpoint()
        ckpt.add_gap(10, 10)
        assert ckpt.gaps == []

    def test_remove_gap_splits(self):
        ckpt = Checkpoint()
        ckpt.add_gap(10, 30)
        ckpt.remove_gap(15, 20)
        assert ckpt.gaps == [(10, 15), (20, 30)]

    def test_remove_gap_edges(self):
        ckpt = Checkpoint()
        ckpt.add_gap(10, 30)
        ckpt.remove_gap(10, 15)
        ckpt.remove_gap(25, 30)
        assert ckpt.gaps == [(15, 25)]
        ckpt.remove_gap(0, 100)
        assert ckpt.gaps == []

    def test_save_load_round_trip(self, tmp_path):
        ckpt = Checkpoint(last_minute=999, report_count=42,
                          counters={"reports_ingested": 42.0})
        ckpt.add_gap(100, 200)
        path = tmp_path / "ckpt.json"
        save_checkpoint(ckpt, path)
        loaded = load_checkpoint(path)
        assert loaded == ckpt
        assert not list(tmp_path.glob("*.tmp"))  # atomic write cleaned up

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.json")

    def test_load_garbage_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_load_missing_fields_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"version": 1}), encoding="utf-8")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_load_wrong_version_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"version": 99, "last_minute": 0,
                                    "gaps": [], "report_count": 0}),
                        encoding="utf-8")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)


class TestDeadLetterQueue:
    def test_in_memory(self):
        dlq = DeadLetterQueue()
        dlq.add(b"\x00\x01", "truncated", 50)
        dlq.add(b"\x02", "truncated", 51)
        dlq.add(b"\x03", "bad magic", 52)
        assert len(dlq) == 3
        assert dlq.errors_by_kind() == {"truncated": 2, "bad magic": 1}

    def test_file_backed_round_trip(self, tmp_path):
        path = tmp_path / "dead.jsonl"
        dlq = DeadLetterQueue(path)
        dlq.add(b"\xde\xad", "err", 9)
        reloaded = DeadLetterQueue(path)
        assert len(reloaded) == 1
        entry = reloaded.entries()[0]
        assert (entry.payload, entry.error, entry.minute) == (b"\xde\xad", "err", 9)


class _FixedFeed:
    """A feed stub that serves scripted batches per minute."""

    def __init__(self, batches):
        self.batches = batches

    def poll(self, until_minute=None):
        return self.batches.pop(0) if self.batches else []


class TestFeedCollector:
    def _pipeline(self, service):
        archive = FeedArchive(service)
        archive.attach()
        feed = PremiumFeed(service)
        feed.attach()
        store = ReportStore()
        client = VTClient(service, premium=True, archive=archive)
        return feed, store, client

    def test_minute_loop_ingests(self, service):
        feed, store, client = self._pipeline(service)
        collector = FeedCollector(feed, store, client)
        _upload(service, "a", 0)
        _upload(service, "b", 2)
        for minute in range(4):
            collector.step(minute)
        assert store.report_count == 2
        stats = collector.stats()
        assert stats.minutes_processed == 4
        assert stats.reports_ingested == 2
        assert stats.pending_gap_minutes == 0

    def test_already_collected_minutes_skipped(self, service):
        feed, store, client = self._pipeline(service)
        collector = FeedCollector(feed, store, client)
        collector.step(5)
        collector.step(3)
        assert collector.stats().minutes_skipped == 1

    def test_jump_gap_is_backfilled_from_archive(self, service):
        feed, store, client = self._pipeline(service)
        collector = FeedCollector(feed, store, client)
        collector.step(0)
        feed.detach()  # the collector dies...
        _upload(service, "a", 5)
        feed.attach()  # ...and comes back later
        collector.step(10)
        assert collector.stats().gaps_detected == 1
        assert collector.stats().reports_backfilled == 1
        assert store.report_count == 1
        assert collector.stats().pending_gap_minutes == 0

    def test_corrupt_delivery_dead_letters_and_recovers(self, service):
        feed, store, client = self._pipeline(service)
        report = _upload(service, "a", 0)
        feed.poll()  # discard the live copy; we substitute a corrupt one
        fixed = _FixedFeed([[codec.encode_report(report)[:10]]])
        collector = FeedCollector(fixed, store, client)
        collector.step(0)
        collector.step(1)
        stats = collector.stats()
        assert stats.dead_letters == 1
        assert len(collector.deadletters) == 1
        # The poll window was re-fetched from the archive: nothing lost.
        assert store.report_count == 1
        assert store.reports_for(report.sha256)[0] == report
        assert stats.pending_gap_minutes == 0

    def test_duplicate_deliveries_are_idempotent(self, service):
        feed, store, client = self._pipeline(service)
        report = _upload(service, "a", 0)
        feed.poll()
        fixed = _FixedFeed([[report, report], [report]])
        collector = FeedCollector(fixed, store, client)
        collector.step(0)
        collector.step(1)
        assert store.report_count == 1
        assert collector.stats().duplicates_skipped == 2

    def test_store_failures_exhaust_retry_budget(self, service):
        feed, store, client = self._pipeline(service)
        _upload(service, "a", 0)

        class _BrokenStore:
            def __getattr__(self, name):
                return getattr(store, name)

            def ingest_unique(self, report):
                raise TransientError("disk on fire", status=503)

        collector = FeedCollector(feed, _BrokenStore(), client,
                                  backoff=BackoffPolicy(max_attempts=3))
        with pytest.raises(CollectError):
            collector.step(0)
        assert collector.stats().store_retries == 3  # every attempt failed

    def test_persist_and_resume(self, service, tmp_path):
        feed, store, client = self._pipeline(service)
        ckpt_path = tmp_path / "ckpt.json"
        store_path = tmp_path / "store.rpr"
        collector = FeedCollector(feed, store, client,
                                  checkpoint_path=ckpt_path,
                                  store_path=store_path, persist_every=1)
        _upload(service, "a", 0)
        _upload(service, "b", 1)
        collector.step(0)
        collector.step(1)
        assert ckpt_path.exists() and store_path.exists()

        resumed_store = ReportStore.load(store_path, reopen=True)
        resumed = FeedCollector(feed, resumed_store, client,
                                checkpoint_path=ckpt_path,
                                store_path=store_path)
        stats = resumed.stats()
        assert stats.resumes == 1
        assert stats.reports_ingested == 2  # counters restored
        assert resumed.checkpoint.last_minute == 1
        resumed.step(1)  # replay is a no-op
        assert resumed_store.report_count == 2

    def test_resume_with_mismatched_store_raises(self, service, tmp_path):
        feed, store, client = self._pipeline(service)
        ckpt = Checkpoint(last_minute=10, report_count=999)
        ckpt_path = tmp_path / "ckpt.json"
        save_checkpoint(ckpt, ckpt_path)
        with pytest.raises(CheckpointError):
            FeedCollector(feed, store, client, checkpoint_path=ckpt_path)

    def test_finalize_backfills_pending_gaps(self, service):
        feed, store, client = self._pipeline(service)
        collector = FeedCollector(feed, store, client)
        _upload(service, "a", 0)
        feed.drop_before(1)  # lose the delivery, as an outage would
        collector.step(0)
        collector.checkpoint.add_gap(0, 1)
        collector.finalize()
        assert store.report_count == 1
        assert collector.stats().pending_gap_minutes == 0
