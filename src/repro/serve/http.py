"""The HTTP front-end over a frozen report store.

``repro.serve`` turns the store substrate into the thing the paper
measured: an online service answering per-file report queries and a
premium per-minute feed, with API keys and tiered quotas.  Three
endpoints, mirroring the real API's shapes:

``GET /files/{sha256}``
    The sample's latest report (the default single-file lookup).
``GET /files/{sha256}/series``
    The sample's full AV-Rank trajectory — the label-dynamics view the
    paper is built on.
``GET /feeds/files/{minute}``
    That minute's feed batch from the :class:`~repro.vt.feed.FeedArchive`
    (premium keys only; expired minutes return a structured 404).

The request path is split from the socket machinery:
:meth:`ReportServer.handle_request` takes ``(method, path, headers)``
and returns ``(status, body_bytes, headers)`` — fully testable without
binding a port, and the property the byte-identical serial-vs-parallel
serving tests rely on.  The socket layer is a stdlib
:class:`~http.server.ThreadingHTTPServer` (no new dependencies); store
access is serialised under one lock because the block cache's LRU
mutates on every read.

Responses are deterministic: JSON with sorted keys and canonical
separators, so two stores that are digest-equal serve byte-identical
bodies.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterable, Mapping

from repro.errors import ArchiveExpiredError, UnknownSampleError
from repro.obs import NULL_REGISTRY
from repro.serve.auth import Tenant, TenantRegistry
from repro.serve.ratelimit import ClockFn, TenantLimiter
from repro.vt.feed import FeedArchive
from repro.vt.reports import ScanReport

#: The API-key request header (the real service's convention).
API_KEY_HEADER = "x-apikey"

_FILE_ROUTE = re.compile(r"^/files/([0-9a-f]{64})$")
_SERIES_ROUTE = re.compile(r"^/files/([0-9a-f]{64})/series$")
_FEED_ROUTE = re.compile(r"^/feeds/files/(\d+)$")

#: Fixed latency bucket edges (seconds) for the request-duration span —
#: tighter than the default edges because in-process serves are fast.
LATENCY_EDGES: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 1.0,
)

Response = tuple[int, bytes, "dict[str, str]"]


def _json_bytes(doc: dict) -> bytes:
    """Canonical response encoding: sorted keys, no whitespace."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")


def report_doc(report: ScanReport) -> dict:
    """A report as the JSON document the service returns."""
    return {
        "sha256": report.sha256,
        "file_type": report.file_type,
        "scan_time": report.scan_time,
        "positives": report.positives,
        "total": report.total,
        "labels": report.engine_labels(),
        "versions": list(report.versions),
        "first_submission_date": report.first_submission_date,
        "last_submission_date": report.last_submission_date,
        "last_analysis_date": report.last_analysis_date,
        "times_submitted": report.times_submitted,
    }


def series_doc(sha256: str, reports: Iterable[ScanReport]) -> dict:
    """A sample's AV-Rank trajectory document."""
    points = [
        {"scan_time": r.scan_time, "positives": r.positives, "total": r.total}
        for r in reports
    ]
    return {"sha256": sha256, "count": len(points), "series": points}


def _error(status: int, code: str, message: str,
           headers: dict[str, str] | None = None, **extra) -> Response:
    doc = {"error": {"code": code, "message": message, **extra}}
    out = {"Content-Type": "application/json"}
    if headers:
        out.update(headers)
    return status, _json_bytes(doc), out


def _ok(doc: dict) -> Response:
    return 200, _json_bytes(doc), {"Content-Type": "application/json"}


class ReportServer:
    """The serving layer: routing, auth, quotas, and the socket wrapper.

    ``store`` must be a loaded :class:`~repro.store.ReportStore`;
    ``archive`` (optional) backs the feed endpoint — without one, feed
    requests return 404.  ``clock`` feeds the rate limiter (injectable
    for tests; real monotonic seconds by default).
    """

    def __init__(
        self,
        store,
        tenants: TenantRegistry,
        archive: FeedArchive | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        clock: ClockFn | None = None,
        metrics=None,
    ) -> None:
        self.store = store
        self.tenants = tenants
        self.archive = archive
        self.host = host
        self.port = port
        self.limiter = TenantLimiter(clock=clock)
        # The block cache's LRU mutates on every read, so concurrent
        # handler threads serialise store/archive access here.
        self._store_lock = threading.Lock()
        self._httpd: ThreadingHTTPServer | None = None
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_rejected_auth = self.metrics.counter("serve.rejected.auth")
        self._m_rejected_rate = self.metrics.counter("serve.rejected.ratelimit")

    # ------------------------------------------------------------------
    # Request handling (socket-free; the testable surface)
    # ------------------------------------------------------------------

    def handle_request(self, method: str, path: str,
                       headers: Mapping[str, str]) -> Response:
        """Serve one request; returns ``(status, body, headers)``.

        Pipeline order matches the real service: authentication, then
        quota (refused requests consume no tokens; admitted ones count
        against the key whatever the final status), then routing.
        """
        endpoint = self._endpoint_of(path)
        with self.metrics.span("serve.latency.seconds",
                               edges=LATENCY_EDGES, endpoint=endpoint):
            status, body, out = self._dispatch(method, path, headers)
        self.metrics.counter("serve.requests",
                             endpoint=endpoint, status=status).inc()
        return status, body, out

    @staticmethod
    def _endpoint_of(path: str) -> str:
        if _FILE_ROUTE.match(path):
            return "file"
        if _SERIES_ROUTE.match(path):
            return "series"
        if _FEED_ROUTE.match(path):
            return "feed"
        return "unknown"

    def _dispatch(self, method: str, path: str,
                  headers: Mapping[str, str]) -> Response:
        if method != "GET":
            return _error(405, "MethodNotAllowedError",
                          f"method {method} is not allowed",
                          headers={"Allow": "GET"})

        key = None
        for name, value in headers.items():
            if name.lower() == API_KEY_HEADER:
                key = value
                break
        if key is None:
            self._m_rejected_auth.inc()
            return _error(401, "AuthenticationRequiredError",
                          f"missing {API_KEY_HEADER} header")
        tenant = self.tenants.lookup(key)
        if tenant is None:
            self._m_rejected_auth.inc()
            return _error(403, "WrongCredentialsError",
                          "unknown API key")

        decision = self.limiter.check(tenant)
        if not decision.allowed:
            self._m_rejected_rate.inc()
            retry = decision.retry_after_seconds
            return _error(
                429, "QuotaExceededError",
                f"quota exceeded for tier {tenant.tier.name!r}; "
                f"retry in {retry}s",
                headers={"Retry-After": str(retry)},
            )

        match = _FILE_ROUTE.match(path)
        if match:
            return self._serve_file(match.group(1))
        match = _SERIES_ROUTE.match(path)
        if match:
            return self._serve_series(match.group(1))
        match = _FEED_ROUTE.match(path)
        if match:
            return self._serve_feed(tenant, int(match.group(1)))
        return _error(404, "NotFoundError", f"unrecognised path {path!r}")

    def _serve_file(self, sha256: str) -> Response:
        try:
            with self._store_lock:
                report = self.store.latest_report(sha256)
        except UnknownSampleError:
            return _error(404, "NotFoundError",
                          f"sample not found: {sha256}")
        return _ok(report_doc(report))

    def _serve_series(self, sha256: str) -> Response:
        try:
            with self._store_lock:
                reports = self.store.report_series(sha256)
        except UnknownSampleError:
            return _error(404, "NotFoundError",
                          f"sample not found: {sha256}")
        return _ok(series_doc(sha256, reports))

    def _serve_feed(self, tenant: Tenant, minute: int) -> Response:
        if not tenant.premium:
            return _error(403, "ForbiddenError",
                          "the feed requires a premium API key")
        if self.archive is None:
            return _error(404, "NotFoundError",
                          "this deployment serves no feed archive")
        try:
            with self._store_lock:
                reports = self.archive.batch(minute)
        except ArchiveExpiredError as exc:
            return _error(
                404, "ArchiveExpiredError", str(exc),
                minute=exc.minute, oldest_available=exc.horizon,
            )
        doc = {
            "minute": minute,
            "count": len(reports),
            "reports": [report_doc(r) for r in reports],
        }
        return _ok(doc)

    # ------------------------------------------------------------------
    # Socket layer (stdlib ThreadingHTTPServer)
    # ------------------------------------------------------------------

    def _ensure_httpd(self) -> ThreadingHTTPServer:
        if self._httpd is None:
            self._httpd = ThreadingHTTPServer(
                (self.host, self.port), _make_handler(self))
            self.port = self._httpd.server_address[1]
        return self._httpd

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (binds on first use)."""
        httpd = self._ensure_httpd()
        return httpd.server_address[0], httpd.server_address[1]

    def start(self) -> threading.Thread:
        """Serve in a daemon thread (tests, embedding); returns it."""
        httpd = self._ensure_httpd()
        thread = threading.Thread(target=httpd.serve_forever,
                                  name="repro-serve", daemon=True)
        thread.start()
        return thread

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._ensure_httpd().serve_forever()

    def shutdown(self) -> None:
        """Stop the socket loop and release the port."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None


def _make_handler(server: ReportServer) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1"

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            status, body, headers = server.handle_request(
                "GET", self.path, dict(self.headers.items()))
            self._reply(status, body, headers)

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            status, body, headers = server.handle_request(
                "POST", self.path, dict(self.headers.items()))
            self._reply(status, body, headers)

        def _reply(self, status: int, body: bytes,
                   headers: dict[str, str]) -> None:
            self.send_response(status)
            for name, value in headers.items():
                self.send_header(name, value)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format: str, *args) -> None:
            # Access logging goes through the metrics registry, not
            # stderr (library code never prints).
            pass

    return Handler
