"""Tests for the daily-snapshot campaign (repro.vt.snapshots)."""

import pytest

from repro.core.avrank import AVRankSeries
from repro.errors import ConfigError
from repro.vt.clock import MINUTES_PER_DAY
from repro.vt.samples import Sample, sha256_of
from repro.vt.service import VirusTotalService
from repro.vt.snapshots import SnapshotCampaign


def _samples(n, malicious=True):
    return [
        Sample(
            sha256=sha256_of(f"snap{i}"),
            file_type="Win32 EXE",
            malicious=malicious,
            first_seen=MINUTES_PER_DAY,
        )
        for i in range(n)
    ]


@pytest.fixture()
def service():
    return VirusTotalService(seed=4)


class TestCampaign:
    def test_snapshot_counts(self, service):
        campaign = SnapshotCampaign(service, cadence_days=1.0,
                                    duration_days=9.5)
        store = campaign.run(_samples(4), start_day=1.0)
        assert campaign.snapshots_taken == 10
        assert store.report_count == 40

    def test_cadence_spacing(self, service):
        campaign = SnapshotCampaign(service, cadence_days=2.0,
                                    duration_days=10)
        store = campaign.run(_samples(1), start_day=0.0)
        times = [r.scan_time
                 for r in store.reports_for(sha256_of("snap0"))]
        gaps = {b - a for a, b in zip(times, times[1:], strict=False)}
        assert gaps == {2 * MINUTES_PER_DAY}

    def test_first_round_uploads_then_rescans(self, service):
        campaign = SnapshotCampaign(service, duration_days=3)
        store = campaign.run(_samples(1), start_day=1.0)
        reports = store.reports_for(sha256_of("snap0"))
        assert all(r.times_submitted == 1 for r in reports)
        assert len({r.last_submission_date for r in reports}) == 1

    def test_campaign_clipped_to_window(self, service):
        campaign = SnapshotCampaign(service, cadence_days=30,
                                    duration_days=10_000)
        store = campaign.run(_samples(1), start_day=400.0)
        # Only one snapshot fits before the window ends at day 426.
        assert 1 <= campaign.snapshots_taken <= 2
        assert store.report_count == campaign.snapshots_taken

    def test_validation(self, service):
        with pytest.raises(ConfigError):
            SnapshotCampaign(service, cadence_days=0)
        with pytest.raises(ConfigError):
            SnapshotCampaign(service, duration_days=-1)
        with pytest.raises(ConfigError):
            SnapshotCampaign(service, scan_minute=99999)
        with pytest.raises(ConfigError):
            SnapshotCampaign(service).run([])

    def test_dense_snapshots_capture_growth(self, service):
        """Daily snapshots should see the AV-Rank climb of fresh malware
        in fine detail (many distinct values)."""
        campaign = SnapshotCampaign(service, cadence_days=1.0,
                                    duration_days=90)
        store = campaign.run(_samples(10), start_day=1.0)
        distinct_ranks = 0
        for _sha, reports in store.iter_sample_reports():
            series = AVRankSeries.from_reports(reports)
            distinct_ranks = max(distinct_ranks, len(set(series.ranks)))
        assert distinct_ranks >= 4
