"""Figure 5 / Observation 3: the δ and Δ distributions over dataset S.

Paper: 35.49 % of adjacent scan pairs show no AV-Rank change (so 64.5 %
do change — variation is prevalent even between adjacent scans); per
sample, roughly half have Δ > 2 and 90 % stay within 11, with the bulk of
Δ in 1-17.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.dynamics import delta_distributions
from repro.analysis.rendering import render_fig5

from conftest import run_once, say


def test_fig5_delta_distributions(benchmark, bench_data):
    dist = run_once(
        benchmark, partial(delta_distributions, bench_data.dataset_s)
    )
    say()
    say(render_fig5(dist))

    # Variation between adjacent scans is prevalent (paper: 64.5 % change).
    assert dist.adjacent_zero_fraction < 0.60
    # Δ concentrates low but with real mass above 2.
    assert 0.30 < dist.overall_above_2_fraction < 0.70
    assert dist.overall_within_11_fraction > 0.65
    # Δ of a dynamic sample is at least 1 by construction.
    assert dist.delta_overall_cdf.min >= 1
