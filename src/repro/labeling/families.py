"""Family extraction by plurality voting, plus detection-string synthesis.

Two halves:

* :func:`label_family` is the AVClass-style baseline: collect candidate
  family tokens from every engine's detection string and return the
  plurality winner (with its support), so users can compare family
  labelling against the paper's AV-Rank thresholding.
* :func:`detection_string` is the simulator-side generator: given an
  engine and a sample's ground-truth family, produce a realistic raw
  detection string in that engine's naming style.  Styles differ enough
  across engines to exercise the tokeniser's alias handling.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from repro.labeling.tokens import normalize_label

#: Naming templates per engine "style"; {family}, {plat}, {suffix} slots.
_STYLES: tuple[str, ...] = (
    "Trojan.{plat}.{family_cap}.{suffix}",
    "{plat}/{family_cap}.{suffix_up}!tr",
    "Gen:Variant.{family_cap}.{num}",
    "{family_cap}.{suffix_up}",
    "Trojan:{plat}/{family_cap}.{suffix_up}!MTB",
    "a variant of {plat}/{family_cap}.{suffix_up}",
    "HEUR:Trojan.{plat}.{family_cap}.gen",
    "Mal/{family_cap}-{num}",
    "{family_cap}.{plat}.{suffix}",
    "W97M.{family_cap}.{num}",
)

_PLATFORMS = {
    "pe": "Win32", "elf": "Linux", "android": "AndroidOS",
    "document": "Doc", "web": "HTML", "script": "Script",
    "archive": "Zip", "image": "Img", "other": "Multi",
}


def detection_string(
    engine_name: str, family: str | None, category: str, sha256: str
) -> str | None:
    """A deterministic synthetic detection string.

    Benign verdicts carry no string (``None``).  Engines occasionally
    emit purely generic names (no family token), as real engines do —
    that noise is what makes plurality voting non-trivial.
    """
    if family is None:
        return None
    rng = random.Random(f"label:{engine_name}:{sha256}")
    if rng.random() < 0.18:
        # Generic-only detection: no recoverable family token.
        return rng.choice((
            "Trojan.Generic.{}".format(rng.randrange(10**7)),
            "Malicious (score: {})".format(rng.randrange(60, 100)),
            "Gen:Heur.Kryptik.{}".format(rng.randrange(100)),
            "Unsafe",
        ))
    style = _STYLES[rng.randrange(len(_STYLES))]
    suffix = "".join(rng.choice("abcdefghij") for _ in range(4))
    return style.format(
        family_cap=family.capitalize(),
        plat=_PLATFORMS.get(category, "Multi"),
        suffix=suffix,
        suffix_up=suffix.upper()[:2],
        num=rng.randrange(1, 9999),
    )


@dataclass(frozen=True)
class FamilyVote:
    """Outcome of plurality family voting over one report's strings."""

    family: str | None
    support: int
    total_votes: int
    alternatives: tuple[tuple[str, int], ...]

    @property
    def confident(self) -> bool:
        """AVClass-style confidence: plurality with at least 2 votes."""
        return self.family is not None and self.support >= 2


def label_family(detections: dict[str, str | None]) -> FamilyVote:
    """Plurality family vote over ``{engine: detection_string}``.

    Engines with no detection (benign/undetected) contribute nothing.
    Each engine votes once — for its *first* candidate token, matching
    AVClass's one-vote-per-vendor rule.
    """
    votes: Counter = Counter()
    for label in detections.values():
        if not label:
            continue
        candidates = normalize_label(label)
        if candidates:
            votes[candidates[0]] += 1
    if not votes:
        return FamilyVote(None, 0, 0, ())
    ranked = votes.most_common()
    family, support = ranked[0]
    return FamilyVote(
        family=family,
        support=support,
        total_votes=sum(votes.values()),
        alternatives=tuple(ranked[1:4]),
    )
