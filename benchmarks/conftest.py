"""Shared fixtures for the benchmark harness.

Two scenario runs are shared across all benches:

* ``bench_data`` — the dynamics dataset *S* generator (fresh, top-20,
  multi-report) at a scale where every Section 5-7 analysis has enough
  samples to show the paper's shapes;
* ``bench_paper_data`` — the full population mix behind the dataset
  overview (Tables 2-3, Figure 1).

Benches run their analysis once under ``benchmark.pedantic`` and print the
rendered table/figure so the harness output mirrors the paper's rows.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiment import ExperimentData, run_experiment
from repro.synth.scenario import dynamics_scenario, paper_scenario

#: Scale knobs, overridable for quick runs: REPRO_BENCH_SAMPLES=2000.
BENCH_SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "20000"))
BENCH_PAPER_SAMPLES = int(os.environ.get("REPRO_BENCH_PAPER_SAMPLES",
                                         str(BENCH_SAMPLES)))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))


@pytest.fixture(scope="session")
def bench_data() -> ExperimentData:
    data = run_experiment(dynamics_scenario(BENCH_SAMPLES, seed=BENCH_SEED))
    # Materialise the series cache once, outside any timed region.
    data.series()
    return data


@pytest.fixture(scope="session")
def bench_paper_data() -> ExperimentData:
    return run_experiment(paper_scenario(BENCH_PAPER_SAMPLES,
                                         seed=BENCH_SEED + 1))


def run_once(benchmark, fn):
    """Run an analysis exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


_CAPTURE_MANAGER = None


def pytest_configure(config):
    global _CAPTURE_MANAGER
    _CAPTURE_MANAGER = config.pluginmanager.getplugin("capturemanager")


def say(*args: object) -> None:
    """Print past pytest's capture layer.

    The harness's contract is to *print the rows the paper reports*;
    suspending capture keeps those tables visible (and teeable) under
    plain ``pytest benchmarks/ --benchmark-only`` without ``-s``.
    """
    if _CAPTURE_MANAGER is not None:
        with _CAPTURE_MANAGER.global_and_fixture_disabled():
            print(*args)
    else:  # pragma: no cover - outside pytest
        print(*args)
