"""Figure 2 / Observation 1: the stable/dynamic 50-50 split.

Paper: of 63,999,984 multi-report samples, 49.90 % are stable (constant
AV-Rank) and 50.10 % dynamic; the report-count distributions of the two
classes nearly coincide (67.09 % vs 71.3 % with exactly two reports), so
the split is not an artefact of scan-count imbalance.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.dynamics import stable_dynamic_split
from repro.analysis.rendering import render_fig2

from conftest import run_once, say


def test_fig2_stable_dynamic_split(benchmark, bench_data):
    split = run_once(
        benchmark, partial(stable_dynamic_split, bench_data.series())
    )
    say()
    say(render_fig2(split))

    # Roughly even split (paper: 50.10 % dynamic).
    assert 0.38 < split.dynamic_fraction < 0.62
    # Report-count distributions of the two classes track each other.
    gap = abs(split.stable_two_report_fraction
              - split.dynamic_two_report_fraction)
    assert gap < 0.30
    # Both classes dominated by two-report samples.
    assert split.stable_two_report_fraction > 0.5
    assert split.dynamic_two_report_fraction > 0.4
