"""Client-facing API layer mirroring VirusTotal's v3 endpoints.

The paper (§2.1, §3) distinguishes three endpoints by their side effects on
report metadata — the behaviour its Table 1 summarises and which this
module reproduces verbatim:

* :class:`UploadAPI`  — ``POST /api/v3/files`` — submit + analyse;
* :class:`RescanAPI`  — ``POST /api/v3/files/{id}/analyse`` — re-analyse;
* :class:`ReportAPI`  — ``GET  /api/v3/files/{id}`` — fetch latest report.

:class:`FeedBatchAPI` — ``GET /api/v3/feeds/files/{minute}`` — re-fetches
a past per-minute feed batch from the service-side
:class:`~repro.vt.feed.FeedArchive` (premium only, bounded retention);
it is the sanctioned backfill path for collectors that missed minutes.

:class:`VTClient` bundles the endpoints behind an API key with the real
service's quota model (free keys: small per-day quota; premium keys:
effectively unlimited plus feed access).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigError, PermissionError_, QuotaExceededError
from repro.vt.reports import ScanReport
from repro.vt.samples import Sample
from repro.vt.service import VirusTotalService

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (feed imports api-level errors)
    from repro.vt.feed import FeedArchive

#: Requests per day allowed on a free API key (the real public quota).
FREE_DAILY_QUOTA = 500


@dataclass
class APIKey:
    """An API key with a daily quota, as enforced by the real service."""

    key: str
    premium: bool = False
    daily_quota: int = FREE_DAILY_QUOTA
    _usage: dict[int, int] = field(default_factory=dict, repr=False)

    def charge(self, day: int) -> None:
        """Consume one request for ``day``; premium keys are uncapped."""
        if self.premium:
            return
        used = self._usage.get(day, 0)
        if used >= self.daily_quota:
            raise QuotaExceededError(used, self.daily_quota)
        self._usage[day] = used + 1

    def used_on(self, day: int) -> int:
        """Requests already consumed on ``day``."""
        return self._usage.get(day, 0)


class _Endpoint:
    """Common plumbing: quota charging against the simulation clock."""

    def __init__(self, service: VirusTotalService, key: APIKey) -> None:
        self._service = service
        self._key = key

    def _charge(self, timestamp: int) -> None:
        self._key.charge(timestamp // (24 * 60))


class UploadAPI(_Endpoint):
    """``POST /files``: submit a file for analysis.

    Updates all three Table 1 fields: ``last_analysis_date``,
    ``last_submission_date`` and ``times_submitted``.
    """

    def __call__(self, sample: Sample | str, timestamp: int) -> ScanReport:
        self._charge(timestamp)
        return self._service.upload(sample, timestamp)


class RescanAPI(_Endpoint):
    """``POST /files/{id}/analyse``: re-analyse an already-known file.

    Updates only ``last_analysis_date``; submission metadata is untouched.
    """

    def __call__(self, sha256: str, timestamp: int) -> ScanReport:
        self._charge(timestamp)
        return self._service.rescan(sha256, timestamp)


class ReportAPI(_Endpoint):
    """``GET /files/{id}``: fetch the latest report.

    Generates no new analysis; none of the Table 1 fields move.
    """

    def __call__(self, sha256: str, timestamp: int) -> ScanReport:
        self._charge(timestamp)
        return self._service.report(sha256)


class FeedBatchAPI(_Endpoint):
    """``GET /feeds/files/{minute}``: re-fetch a past per-minute batch.

    Premium-only, like the live feed itself, and bounded by the archive's
    retention window — a request past the window raises
    :class:`~repro.errors.ArchiveExpiredError`, mirroring the real
    endpoint's 7-day catch-up limit.
    """

    def __init__(
        self,
        service: VirusTotalService,
        key: APIKey,
        archive: "FeedArchive | None",
    ) -> None:
        super().__init__(service, key)
        self._archive = archive

    def __call__(self, minute: int, timestamp: int) -> list[ScanReport]:
        if not self._key.premium:
            raise PermissionError_("feed batch")
        if self._archive is None:
            raise ConfigError(
                "client has no feed archive bound; pass archive= to VTClient"
            )
        self._charge(timestamp)
        return self._archive.batch(minute)


class VTClient:
    """A VirusTotal API client bound to one key.

    >>> service = VirusTotalService(seed=1)
    >>> client = VTClient(service, premium=True)
    >>> # report = client.upload(sample, timestamp)
    """

    def __init__(
        self,
        service: VirusTotalService,
        key: str = "test-key",
        premium: bool = False,
        daily_quota: int = FREE_DAILY_QUOTA,
        archive: "FeedArchive | None" = None,
    ) -> None:
        self.service = service
        self.api_key = APIKey(key, premium=premium, daily_quota=daily_quota)
        self.upload = UploadAPI(service, self.api_key)
        self.rescan = RescanAPI(service, self.api_key)
        self.report = ReportAPI(service, self.api_key)
        self.feed_batch = FeedBatchAPI(service, self.api_key, archive)

    def require_premium(self, endpoint: str) -> None:
        """Gate premium-only functionality (the feed) on the key."""
        if not self.api_key.premium:
            raise PermissionError_(endpoint)
