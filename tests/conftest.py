"""Shared fixtures.

Expensive artefacts (a scenario run, the default fleet) are session-scoped
so the whole suite pays for them once.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiment import ExperimentData, run_experiment
from repro.synth.scenario import ScenarioConfig, tiny_scenario
from repro.vt.engines import EngineFleet, default_fleet
from repro.vt.reports import ScanReport
from repro.vt.samples import sha256_of


@pytest.fixture(scope="session")
def fleet() -> EngineFleet:
    return default_fleet(seed=0)


@pytest.fixture(scope="session")
def experiment() -> ExperimentData:
    """A small but analysable dynamics-scenario run."""
    return run_experiment(tiny_scenario(n_samples=900, seed=7))


@pytest.fixture(scope="session")
def paper_mix_experiment() -> ExperimentData:
    """A run with the full population mix (single-report majority)."""
    config = ScenarioConfig(seed=11, n_samples=1200)
    return run_experiment(config)


def make_report(
    sha: str = "a" * 64,
    file_type: str = "Win32 EXE",
    scan_time: int = 1000,
    labels: list[int] | None = None,
    versions: list[int] | None = None,
    first_submission: int = 0,
    n_engines: int = 5,
) -> ScanReport:
    """A hand-built report with a small synthetic fleet."""
    from repro.vt.reports import encode_labels

    if labels is None:
        labels = [0] * n_engines
    if versions is None:
        versions = [1] * n_engines
    positives = sum(1 for v in labels if v == 1)
    total = sum(1 for v in labels if v != -1)
    return ScanReport(
        sha256=sha,
        file_type=file_type,
        scan_time=scan_time,
        positives=positives,
        total=total,
        labels=encode_labels(labels),
        versions=tuple(versions),
        first_submission_date=first_submission,
        last_submission_date=max(first_submission, 0),
        last_analysis_date=scan_time,
        times_submitted=1,
    )


@pytest.fixture()
def report_factory():
    return make_report


def make_sha(token: str) -> str:
    return sha256_of(token)


@pytest.fixture()
def sha_factory():
    return make_sha
