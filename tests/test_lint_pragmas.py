"""Pragma handling tests for reprolint.

Covers the suppression escape hatch end to end: line pragmas,
multi-code pragmas, scope pragmas on (decorated) defs, file-level
pragmas, and the rule that a malformed or unknown pragma is itself a
finding (RPL000) rather than a silent no-op.
"""

import textwrap

from repro.lint import collect_pragmas, lint_source


def run(source: str, path: str = "repro/_fixture.py"):
    return lint_source(textwrap.dedent(source), path=path)


class TestLinePragmas:
    def test_line_pragma_suppresses_only_its_line(self):
        result = run("""
            import time
            a = time.time()  # reprolint: disable=RPL001 - boot banner only
            b = time.time()
        """)
        assert [f.code for f in result.findings] == ["RPL001"]
        assert result.findings[0].line == 4
        assert len(result.suppressed) == 1

    def test_pragma_for_wrong_code_does_not_suppress(self):
        result = run("""
            import time
            a = time.time()  # reprolint: disable=RPL002 - wrong code on purpose
        """)
        assert [f.code for f in result.findings] == ["RPL001"]
        assert result.suppressed == []

    def test_multi_code_pragma(self):
        result = run("""
            import time
            import uuid
            pair = (time.time(), uuid.uuid4())  # reprolint: disable=RPL001,RPL003 - fixture pair
        """)
        assert result.findings == []
        assert len(result.suppressed) == 2

    def test_justification_text_after_codes_is_allowed(self):
        result = run("""
            import uuid
            t = uuid.uuid4()  # reprolint: disable=RPL003 - opaque id shown to humans only
        """)
        assert result.findings == []
        assert len(result.suppressed) == 1


class TestScopePragmas:
    def test_def_line_pragma_covers_whole_body(self):
        result = run("""
            import time
            def banner():  # reprolint: disable=RPL001 - display only
                start = time.time()
                return time.time() - start
        """)
        assert result.findings == []
        assert len(result.suppressed) == 2

    def test_decorator_line_pragma_covers_decorated_def(self):
        result = run("""
            import functools
            import time
            @functools.lru_cache  # reprolint: disable=RPL001 - display only
            def banner():
                return time.time()
        """)
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_class_scope_pragma(self):
        result = run("""
            import time
            class Wall:  # reprolint: disable=RPL001 - wall-clock wrapper fixture
                def read(self):
                    return time.time()
        """)
        assert result.findings == []

    def test_scope_pragma_does_not_leak_outside(self):
        result = run("""
            import time
            def banner():  # reprolint: disable=RPL001 - display only
                return time.time()
            after = time.time()
        """)
        assert [f.code for f in result.findings] == ["RPL001"]
        assert result.findings[0].line == 5


class TestFilePragmas:
    def test_file_level_pragma_suppresses_everywhere(self):
        result = run("""
            # reprolint: disable-file=RPL001 - legacy wall-clock shim
            import time
            a = time.time()
            def f():
                return time.time()
        """)
        assert result.findings == []
        assert len(result.suppressed) == 2

    def test_file_level_pragma_is_code_scoped(self):
        result = run("""
            # reprolint: disable-file=RPL001 - legacy shim fixture
            import time
            import uuid
            a = time.time()
            b = uuid.uuid4()
        """)
        assert [f.code for f in result.findings] == ["RPL003"]


class TestJustificationRequired:
    def test_missing_why_is_a_finding_but_still_suppresses(self):
        result = run("""
            import time
            a = time.time()  # reprolint: disable=RPL001
        """)
        assert [f.code for f in result.findings] == ["RPL000"]
        assert "justification" in result.findings[0].message
        # The listed code still suppresses: one hygiene finding, not a
        # doubled report of everything the pragma was covering.
        assert [f.code for f in result.suppressed] == ["RPL001"]

    def test_empty_dash_justification_is_a_finding(self):
        result = run("""
            import time
            a = time.time()  # reprolint: disable=RPL001 -
        """)
        assert [f.code for f in result.findings] == ["RPL000"]

    def test_file_level_pragma_requires_why_too(self):
        result = run("""
            # reprolint: disable-file=RPL001
            import time
            a = time.time()
        """)
        assert [f.code for f in result.findings] == ["RPL000"]
        assert [f.code for f in result.suppressed] == ["RPL001"]

    def test_flow_code_pragma_with_why_is_clean(self):
        result = run("""
            import time
            a = time.time()  # reprolint: disable=RPL001 - operator display
        """)
        assert result.findings == []


class TestBadPragmas:
    def test_unknown_code_is_a_finding(self):
        result = run("""
            import time
            a = time.time()  # reprolint: disable=RPL999 - no such rule
        """)
        assert sorted(f.code for f in result.findings) == ["RPL000", "RPL001"]
        rpl000 = next(f for f in result.findings if f.code == "RPL000")
        assert "RPL999" in rpl000.message

    def test_empty_pragma_is_a_finding(self):
        result = run("""
            x = 1  # reprolint: disable=
        """)
        assert [f.code for f in result.findings] == ["RPL000"]

    def test_rpl000_cannot_be_pragmad_away(self):
        result = run("""
            x = 1  # reprolint: disable=BOGUS,RPL000 - hygiene fixture
        """)
        assert [f.code for f in result.findings] == ["RPL000"]

    def test_non_pragma_comments_ignored(self):
        result = run("""
            x = 1  # reprolint is great, but this is prose not a pragma
            y = 2  # disable=RPL001 (missing the reprolint: prefix)
        """)
        assert result.findings == []


class TestCollectPragmas:
    def test_collect_reports_lines_and_codes(self):
        pragmas = collect_pragmas(textwrap.dedent("""
            # reprolint: disable-file=RPL003 - fixture
            a = 1  # reprolint: disable=RPL001, RPL004 - fixture
        """))
        assert pragmas.file_level == {"RPL003"}
        assert pragmas.by_line[3] == {"RPL001", "RPL004"}
        assert pragmas.bad == []

    def test_collect_flags_unknown_codes(self):
        pragmas = collect_pragmas("a = 1  # reprolint: disable=NOPE - why\n")
        assert len(pragmas.bad) == 1
        assert pragmas.bad[0].line == 1
