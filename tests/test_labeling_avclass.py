"""Tests for the corpus-level AVClass workflow (repro.labeling.avclass)."""

import pytest

from repro.errors import ConfigError
from repro.labeling.avclass import (
    CorpusLabeler,
    accuracy_against_truth,
    build_corpus_from_store,
)


FAMILIES = ("emotet", "qakbot", "mirai", "redline", "lokibot",
            "trickbot", "remcos", "njrat")


def _corpus():
    """A hand-built diverse corpus: eight families (three samples each)
    plus a pervasive pseudo-generic token ('malcode') on every sample."""
    def detections(family):
        return {
            "a": f"Trojan.Win32.{family.capitalize()}.x",
            "b": f"{family.capitalize()}.yz",
            "c": "Trojan.Malcode.Generic",  # 'malcode' appears everywhere
        }

    corpus = {}
    index = 0
    for family in FAMILIES:
        for _ in range(3):
            corpus[f"{index:064x}"] = detections(family)
            index += 1
    # 'emotetx' is an alias: it only ever appears on emotet samples.
    emotet_shas = [f"{i:064x}" for i in range(3)]
    for sha in emotet_shas:
        corpus[sha]["d"] = "W32/Emotetx.A"
    return corpus


class TestFit:
    def test_generic_token_discovered(self):
        labeler = CorpusLabeler()
        profile = labeler.fit(_corpus())
        assert "malcode" in profile.generic_tokens
        assert "emotet" not in profile.generic_tokens
        assert "qakbot" not in profile.generic_tokens

    def test_alias_folded_into_family(self):
        labeler = CorpusLabeler(alias_cooccurrence=0.9)
        profile = labeler.fit(_corpus())
        assert profile.aliases.get("emotetx") == "emotet"

    def test_prevalence_counts(self):
        labeler = CorpusLabeler()
        profile = labeler.fit(_corpus())
        top = dict(profile.top_families())
        assert top["emotet"] >= 3
        assert top["qakbot"] >= 3

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            CorpusLabeler(generic_threshold=0.0)
        with pytest.raises(ConfigError):
            CorpusLabeler(alias_cooccurrence=1.5)

    def test_label_before_fit_rejected(self):
        with pytest.raises(ConfigError):
            CorpusLabeler().label({"a": "Emotet.x"})


class TestLabel:
    def test_generic_tokens_suppressed_at_labelling(self):
        labeler = CorpusLabeler()
        labeler.fit(_corpus())
        vote = labeler.label({"a": "Trojan.Malcode.Generic",
                              "b": "Emotet.abc123yz"})
        assert vote.family == "emotet"

    def test_alias_resolved_at_labelling(self):
        labeler = CorpusLabeler()
        labeler.fit(_corpus())
        vote = labeler.label({"a": "W32/Emotetx.A", "b": "Emotet.q"})
        assert vote.family == "emotet"
        assert vote.support == 2

    def test_label_corpus_covers_everything(self):
        labeler = CorpusLabeler()
        votes = labeler.label_corpus(_corpus())
        assert len(votes) == 24
        emotet_votes = sum(1 for v in votes.values()
                           if v.family == "emotet")
        assert emotet_votes >= 3


class TestAccuracy:
    def test_accuracy_metric(self):
        labeler = CorpusLabeler()
        corpus = _corpus()
        votes = labeler.label_corpus(corpus)
        truth = {sha: FAMILIES[i // 3] for i, sha in enumerate(corpus)}
        assert accuracy_against_truth(votes, truth) > 0.9

    def test_benign_samples_excluded(self):
        from repro.labeling.families import FamilyVote

        votes = {"x": FamilyVote("emotet", 3, 3, ())}
        assert accuracy_against_truth(votes, {"x": None}) == 0.0


class TestStoreIntegration:
    def test_end_to_end_on_experiment(self, experiment):
        corpus, truth = build_corpus_from_store(
            experiment.store, experiment.engine_names, experiment.service
        )
        assert len(corpus) == experiment.store.sample_count
        labeler = CorpusLabeler()
        votes = labeler.label_corpus(corpus)
        accuracy = accuracy_against_truth(votes, truth)
        # The simulator's detection strings carry the family ~82 % of the
        # time per engine; plurality voting should recover most truths.
        assert accuracy > 0.75

    def test_benign_samples_get_no_family(self, experiment):
        corpus, truth = build_corpus_from_store(
            experiment.store, experiment.engine_names, experiment.service
        )
        labeler = CorpusLabeler()
        votes = labeler.label_corpus(corpus)
        benign_with_family = sum(
            1 for sha, vote in votes.items()
            if truth[sha] is None and vote.confident
        )
        benign_total = sum(1 for f in truth.values() if f is None)
        if benign_total:
            assert benign_with_family / benign_total < 0.10
