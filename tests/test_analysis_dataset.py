"""Tests for the dataset-overview pipelines (repro.analysis.dataset)."""

import pytest

from repro.analysis.dataset import (
    FileTypeDistribution,
    ReportsPerSample,
    file_type_distribution,
    store_overview,
)
from repro.store.reportstore import ReportStore

from conftest import make_report, make_sha


@pytest.fixture()
def small_store():
    store = ReportStore()
    for i in range(6):
        sha = make_sha(f"exe{i}")
        store.ingest(make_report(sha=sha, file_type="Win32 EXE",
                                 scan_time=100 + i))
    for i in range(3):
        sha = make_sha(f"txt{i}")
        store.ingest(make_report(sha=sha, file_type="TXT",
                                 scan_time=500 + i))
        store.ingest(make_report(sha=sha, file_type="TXT",
                                 scan_time=600 + i))
    return store


class TestTable3:
    def test_rows_sorted_by_sample_count(self, small_store):
        dist = file_type_distribution(small_store)
        assert dist.rows[0].file_type == "Win32 EXE"
        assert dist.rows[0].samples == 6
        assert dist.rows[1].file_type == "TXT"

    def test_shares_sum_to_one(self, small_store):
        dist = file_type_distribution(small_store)
        assert sum(r.sample_share for r in dist.rows) == pytest.approx(1.0)
        assert sum(r.report_share for r in dist.rows) == pytest.approx(1.0)

    def test_report_counts(self, small_store):
        dist = file_type_distribution(small_store)
        assert dist.row_for("TXT").reports == 6
        assert dist.total_reports == 12
        assert dist.total_samples == 9

    def test_row_for_missing_type(self, small_store):
        assert file_type_distribution(small_store).row_for("PDF") is None

    def test_top_truncates(self, small_store):
        assert len(file_type_distribution(small_store).top(1)) == 1


class TestFigure1:
    def test_landmarks(self, small_store):
        result = ReportsPerSample.from_store(small_store)
        assert result.single_report_fraction == pytest.approx(6 / 9)
        assert result.max_reports == 2
        assert result.multi_report_samples == 3

    def test_under_landmarks_strict(self, small_store):
        result = ReportsPerSample.from_store(small_store)
        assert result.under_6_fraction == 1.0
        assert result.under_20_fraction == 1.0


class TestTable2:
    def test_overview_totals(self, small_store):
        stats = store_overview(small_store)
        assert stats.total_reports == 12
        assert stats.total_samples == 9


class TestOnGeneratedData:
    def test_paper_mix_fig1_shape(self, paper_mix_experiment):
        result = ReportsPerSample.from_store(paper_mix_experiment.store)
        # Figure 1 landmarks at scenario scale.
        assert result.single_report_fraction == pytest.approx(0.888, abs=0.04)
        assert result.under_20_fraction > 0.97

    def test_paper_mix_table3_order(self, paper_mix_experiment):
        dist = file_type_distribution(paper_mix_experiment.store)
        assert dist.rows[0].file_type == "Win32 EXE"
        assert isinstance(dist, FileTypeDistribution)

    def test_paper_mix_fresh_share(self, paper_mix_experiment):
        stats = store_overview(paper_mix_experiment.store)
        assert stats.fresh_fraction == pytest.approx(0.9176, abs=0.04)

    def test_compression_beats_paper(self, paper_mix_experiment):
        """Our binary+zlib store compresses at least as well as the
        paper's MongoDB pipeline (10.06x)."""
        stats = store_overview(paper_mix_experiment.store)
        assert stats.compression_rate > 10.06

    def test_dll_rescanned_more_than_txt(self, paper_mix_experiment):
        dist = file_type_distribution(paper_mix_experiment.store)
        dll = dist.row_for("Win32 DLL")
        txt = dist.row_for("TXT")
        if dll and txt and dll.samples > 20 and txt.samples > 20:
            assert (dll.reports / dll.samples) > (txt.reports / txt.samples)
