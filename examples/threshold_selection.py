#!/usr/bin/env python3
"""Choosing a robust voting threshold for your own dataset (§5.4, §8).

The paper's core practical advice: before fixing "malicious if AV-Rank
>= t", measure the *gray fraction* — the share of samples whose label
would depend on when you scanned them — across candidate thresholds, and
pick t from a range where it stays low.  The safe range differs by file
type (PE files tolerate low thresholds best).

This example runs that workflow end to end on a synthetic dataset and
compares three aggregation strategies on the resulting labels.

Run:  python examples/threshold_selection.py
"""

from repro import dynamics_scenario, run_experiment
from repro.analysis.dynamics import threshold_impact
from repro.analysis.rendering import ascii_table, pct
from repro.core.aggregation import (
    PercentageAggregator,
    ThresholdAggregator,
    TrustedEnginesAggregator,
)
from repro.core.recommend import best_range, recommend_threshold_ranges

data = run_experiment(dynamics_scenario(n_samples=4_000, seed=7))
dataset_s = data.dataset_s
print(f"analysing {len(dataset_s):,} fresh dynamic samples")

# ---------------------------------------------------------------------------
# 1. Gray-fraction curves, overall and for PE files (Figure 8).
# ---------------------------------------------------------------------------
impact = threshold_impact(dataset_s)

rows = []
for overall, pe in zip(impact.overall, impact.pe_only):
    if overall.threshold % 5 == 0 or overall.threshold == 1:
        rows.append((overall.threshold, pct(overall.gray_fraction),
                     pct(pe.gray_fraction)))
print(ascii_table(["t", "gray (all)", "gray (PE)"], rows))

# ---------------------------------------------------------------------------
# 2. Recommended ranges: thresholds where gray stays under 10 %.
# ---------------------------------------------------------------------------
overall_ranges = recommend_threshold_ranges(impact.overall, gray_limit=0.10)
pe_ranges = recommend_threshold_ranges(impact.pe_only, gray_limit=0.10)
print(f"\nsafe overall ranges: "
      f"{', '.join(map(str, overall_ranges)) or 'none'} "
      "(paper: 1-11 and 28-50)")
print(f"safe PE ranges     : {', '.join(map(str, pe_ranges)) or 'none'} "
      "(paper: 1-24)")
if pe_ranges:
    chosen = best_range(pe_ranges)
    print(f"widest PE range    : {chosen} "
          f"(max gray {pct(chosen.max_gray_fraction)})")

# ---------------------------------------------------------------------------
# 3. Compare aggregation strategies on the *last* report of each sample.
# ---------------------------------------------------------------------------
threshold = ThresholdAggregator(10)
percentage = PercentageAggregator(0.25)
reputable = TrustedEnginesAggregator(
    ["Kaspersky", "BitDefender", "Microsoft", "Avira", "ESET-NOD32",
     "Symantec", "Sophos", "Avast"],
    data.engine_names,
    threshold=3,
)

agree = total = 0
flips_by_strategy = {name: 0 for name in ("t>=10", "25%", "trusted")}
for series in dataset_s[:1000]:
    reports = data.store.reports_for(series.sha256)
    final = reports[-1]
    verdicts = (threshold.is_malicious(final),
                percentage.is_malicious(final),
                reputable.is_malicious(final))
    total += 1
    if len(set(verdicts)) == 1:
        agree += 1
    # How often would each strategy's label have changed across rescans?
    for name, strategy in (("t>=10", threshold), ("25%", percentage),
                           ("trusted", reputable)):
        labels = [strategy.is_malicious(r) for r in reports]
        if len(set(labels)) > 1:
            flips_by_strategy[name] += 1

print(f"\nall three strategies agree on {pct(agree / total)} of samples")
print("samples whose label changed across rescans, per strategy:")
for name, count in flips_by_strategy.items():
    print(f"  {name:8s}: {pct(count / total)}")
