"""The VirusTotal service simulator substrate.

The paper's measurement was driven by VirusTotal's paid premium feed; that
feed cannot be redistributed, so this subpackage re-creates the service end
to end: a minute-resolution simulation clock (:mod:`repro.vt.clock`), the
file-type catalogue VT tags reports with (:mod:`repro.vt.filetypes`), a
fleet of 70 behavioural antivirus engines (:mod:`repro.vt.engines`), sample
and scan-report records (:mod:`repro.vt.samples`, :mod:`repro.vt.reports`),
the scanning service itself (:mod:`repro.vt.service`), the three public
APIs whose update rules the paper's Table 1 documents
(:mod:`repro.vt.api`), and the premium per-minute feed the authors consumed
(:mod:`repro.vt.feed`).
"""

from repro.vt.clock import (
    COLLECTION_END,
    COLLECTION_MONTHS,
    COLLECTION_START,
    MINUTES_PER_DAY,
    SimulationClock,
    day_of,
    minute_of_day,
    minutes,
    month_index,
    month_label,
)
from repro.vt.filetypes import (
    FILE_TYPES,
    PE_FILE_TYPES,
    TOP20_FILE_TYPES,
    FileTypeProfile,
    file_type_profile,
    is_pe_type,
)
from repro.vt.engines import Engine, EngineFleet, default_fleet
from repro.vt.samples import Sample, sha256_of
from repro.vt.reports import (
    LABEL_BENIGN,
    LABEL_MALICIOUS,
    LABEL_UNDETECTED,
    EngineResult,
    ScanReport,
)
from repro.vt.service import VirusTotalService
from repro.vt.api import ReportAPI, RescanAPI, UploadAPI, VTClient
from repro.vt.feed import PremiumFeed

__all__ = [
    "COLLECTION_END",
    "COLLECTION_MONTHS",
    "COLLECTION_START",
    "MINUTES_PER_DAY",
    "SimulationClock",
    "day_of",
    "minute_of_day",
    "minutes",
    "month_index",
    "month_label",
    "FILE_TYPES",
    "PE_FILE_TYPES",
    "TOP20_FILE_TYPES",
    "FileTypeProfile",
    "file_type_profile",
    "is_pe_type",
    "Engine",
    "EngineFleet",
    "default_fleet",
    "Sample",
    "sha256_of",
    "LABEL_BENIGN",
    "LABEL_MALICIOUS",
    "LABEL_UNDETECTED",
    "EngineResult",
    "ScanReport",
    "VirusTotalService",
    "ReportAPI",
    "RescanAPI",
    "UploadAPI",
    "VTClient",
    "PremiumFeed",
]
