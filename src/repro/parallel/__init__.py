"""Deterministic sharded parallel execution of scenario experiments.

The serial experiment loop simulates every scan on one core.  This
package partitions a scenario's sample population into contiguous index
ranges — finer-grained than the worker count — and drives them through a
fault-tolerant elastic executor, merging the frozen shard stores back
into one **bit-identically** to the serial run:

* every sample's randomness is keyed by its global index and hash, so a
  shard's reports do not depend on the partition, on scheduling, or on
  which worker ran it (:mod:`repro.parallel.sharding`);
* each worker replays its shard's events in global time order, so
  per-sample RNG streams advance exactly as serially
  (:mod:`repro.parallel.worker`);
* workers live behind a pluggable :class:`~repro.parallel.executors.base.Executor`
  (in-process | fork | spawn) and a work-queue scheduler with
  heartbeats, work-stealing, bounded keyed-backoff retries and
  per-shard digest checkpoints (:mod:`repro.parallel.executors`,
  :mod:`repro.parallel.scheduler`, :mod:`repro.parallel.heartbeat`);
* completed shards stream into the merge as they finish; the merge
  splices per-month record streams by ``(scan_time,
  global_sample_index)`` — the serial ingest order — at block
  granularity where shards do not overlap in time
  (:mod:`repro.store.merge`).

The equivalence contract: ``run_experiment(config, workers=K)`` yields a
store whose :meth:`~repro.store.reportstore.ReportStore.digest` equals
the serial run's, for every K, every executor kind — and under any
injected crash/hang/corruption chaos the retry budget survives.
"""

from repro.parallel.executors import (
    EXECUTOR_KINDS,
    fork_available,
    make_executor,
    resolve_kind,
)
from repro.parallel.scheduler import ExecutorPolicy, ExecutorReport, ShardScheduler
from repro.parallel.sharding import ShardSpec, partition_samples, resolve_workers
from repro.parallel.worker import RangeRun, ShardRun, execute_range, run_shard

__all__ = [
    "EXECUTOR_KINDS",
    "ExecutorPolicy",
    "ExecutorReport",
    "RangeRun",
    "ShardRun",
    "ShardScheduler",
    "ShardSpec",
    "execute_range",
    "fork_available",
    "make_executor",
    "partition_samples",
    "resolve_kind",
    "resolve_workers",
    "run_shard",
]
