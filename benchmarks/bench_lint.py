"""reprolint wall-clock: full pass budget, incremental pass ratio.

The self-check runs inside tier-1 (``tests/test_lint_selfcheck.py``) and
in every CI matrix cell, so the whole-package pass has a latency budget.
v2 added the whole-program flow rules (call graph + RPL101-105), which
roughly tripled the cold cost — the budget moved from 2 s to 5 s — and
in exchange introduced the incremental cache, whose contract this bench
also gates: after a one-file edit, a cached pass must cost at most
``0.3x`` the full pass (measured: ~0.03x — cached per-file results are
reused and the call graph is rebuilt from cached summaries without
re-parsing).

Dual mode, like the other benches:

* under pytest-benchmark (``pytest benchmarks/ --benchmark-only``) the
  passes are timed by the harness and the budgets asserted;
* as a script (``python benchmarks/bench_lint.py``) it writes a schema'd
  ``BENCH_lint.json`` artifact with the full/incremental pair.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lint import (
    default_target,
    lint_paths,
    lint_paths_cached,
    render_json,
)

try:  # pytest mode — absent when run as a plain script
    from conftest import run_once, say
except ImportError:  # pragma: no cover - script mode
    run_once = None

    def say(*args: object) -> None:
        print(*args)

#: Schema identifier for the benchmark artifact (shared across benches).
RESULTS_SCHEMA = "repro-bench/1"

#: Full-repo budget in seconds; generous for cold CI runners, a few x
#: above what a warm local pass takes (the v2 flow pass is ~2-3 s).
DEFAULT_BUDGET_SECONDS = float(
    os.environ.get("REPRO_BENCH_LINT_BUDGET", "5.0"))

#: Ceiling on incremental-vs-full wall-clock after a one-file edit.
DEFAULT_INCREMENTAL_RATIO = float(
    os.environ.get("REPRO_BENCH_LINT_INCREMENTAL_RATIO", "0.3"))

#: Timed repetitions in script mode (best-of, to shed FS cache noise).
DEFAULT_REPEATS = 3


def _time_full_pass(target: Path, repeats: int) -> tuple[float, list, object]:
    walls = []
    result = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = lint_paths([target])
        walls.append(time.perf_counter() - started)
    return min(walls), walls, result


def _time_incremental_pass(target: Path,
                           repeats: int) -> tuple[float, list, object]:
    """Prime a cache over a private copy, edit one file, time the re-run."""
    with tempfile.TemporaryDirectory(prefix="bench-lint-") as tmp:
        tree = Path(tmp) / "src" / "repro"
        tree.parent.mkdir(parents=True)
        shutil.copytree(target, tree,
                        ignore=shutil.ignore_patterns("__pycache__"))
        cache = Path(tmp) / "lint-cache.json"
        lint_paths_cached([tree], cache)
        victim = sorted(tree.rglob("*.py"))[0]
        walls = []
        result = None
        for i in range(max(1, repeats)):
            victim.write_text(victim.read_text(encoding="utf-8") +
                              f"\n# bench touch {i}\n", encoding="utf-8")
            started = time.perf_counter()
            result = lint_paths_cached([tree], cache)
            walls.append(time.perf_counter() - started)
        if result.files_reanalyzed != 1:
            raise AssertionError(
                f"one-file edit reanalyzed {result.files_reanalyzed} files")
    return min(walls), walls, result


def run_lint_bench(repeats: int = DEFAULT_REPEATS) -> dict:
    """Time full and incremental passes; returns the artifact payload."""
    target = default_target()
    full_best, full_walls, result = _time_full_pass(target, repeats)
    inc_best, inc_walls, inc_result = _time_incremental_pass(target, repeats)
    report_bytes = len(render_json(result).encode("utf-8"))
    ratio = inc_best / full_best if full_best else 0.0
    return {
        "schema": RESULTS_SCHEMA,
        "suite": "lint",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "target": str(target),
        "budget_seconds": DEFAULT_BUDGET_SECONDS,
        "incremental_ratio_budget": DEFAULT_INCREMENTAL_RATIO,
        "benchmarks": [
            {
                "name": "reprolint_full_repo",
                "files_checked": result.files_checked,
                "findings": len(result.findings),
                "suppressed": len(result.suppressed),
                "json_report_bytes": report_bytes,
                "wall_seconds": round(full_best, 4),
                "wall_seconds_all": [round(w, 4) for w in full_walls],
                "within_budget": full_best <= DEFAULT_BUDGET_SECONDS,
            },
            {
                "name": "reprolint_incremental_one_file",
                "files_checked": inc_result.files_checked,
                "files_reanalyzed": inc_result.files_reanalyzed,
                "wall_seconds": round(inc_best, 4),
                "wall_seconds_all": [round(w, 4) for w in inc_walls],
                "ratio_vs_full": round(ratio, 4),
                "within_budget": ratio <= DEFAULT_INCREMENTAL_RATIO,
            },
        ],
    }


def render(results: dict) -> None:
    full, inc = results["benchmarks"]
    say()
    say(f"reprolint full-repo bench ({full['files_checked']} files, "
        f"{full['findings']} findings, "
        f"{full['suppressed']} suppressed)")
    say(f"  full pass best of {len(full['wall_seconds_all'])}: "
        f"{full['wall_seconds']:.3f}s — "
        f"{'within' if full['within_budget'] else 'OVER'} the "
        f"{results['budget_seconds']:.1f}s budget")
    say(f"  incremental (one-file edit, "
        f"{inc['files_reanalyzed']} reanalyzed): "
        f"{inc['wall_seconds']:.3f}s = {inc['ratio_vs_full']:.3f}x full — "
        f"{'within' if inc['within_budget'] else 'OVER'} the "
        f"{results['incremental_ratio_budget']:.1f}x ceiling")


def test_lint_full_repo(benchmark):
    """pytest-benchmark entry point: one timed full-package pass."""
    target = default_target()
    result = benchmark(lambda: lint_paths([target]))
    assert result.findings == []
    assert result.files_checked > 50
    assert benchmark.stats.stats.min <= DEFAULT_BUDGET_SECONDS, (
        f"full-repo lint exceeded the {DEFAULT_BUDGET_SECONDS:.1f}s budget"
    )


def test_lint_warm_cache(benchmark, tmp_path):
    """pytest-benchmark entry point: warm cached pass over the package."""
    target = default_target()
    cache = tmp_path / "lint-cache.json"
    lint_paths_cached([target], cache)
    result = benchmark(lambda: lint_paths_cached([target], cache))
    assert result.files_reanalyzed == 0
    assert result.findings == []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark full and incremental reprolint passes and "
                    "write a schema'd BENCH_lint.json.")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help=f"timed repetitions, best-of "
                             f"(default: {DEFAULT_REPEATS})")
    parser.add_argument("--output", default="BENCH_lint.json",
                        help="artifact path (default: BENCH_lint.json)")
    args = parser.parse_args(argv)

    results = run_lint_bench(args.repeats)
    render(results)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n",
                                 encoding="utf-8")
    say(f"\nwrote {args.output}")
    return 0 if all(b["within_budget"] for b in results["benchmarks"]) else 1


if __name__ == "__main__":
    raise SystemExit(main())
