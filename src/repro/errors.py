"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Sub-hierarchies mirror the
package layout: the VirusTotal simulator raises :class:`VTError` subclasses
(matching the HTTP-level failures the real service returns), the report
store raises :class:`StoreError` subclasses, and the analysis layer raises
:class:`AnalysisError` subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A scenario or component was configured with invalid parameters."""


# --------------------------------------------------------------------------
# VirusTotal simulator errors (mirror the real service's API failures)
# --------------------------------------------------------------------------


class VTError(ReproError):
    """Base class for VirusTotal service simulator errors."""


class NotFoundError(VTError):
    """The requested sample hash is not known to the service (HTTP 404)."""

    def __init__(self, sha256: str) -> None:
        super().__init__(f"sample not found: {sha256}")
        self.sha256 = sha256


class InvalidHashError(VTError):
    """The supplied string is not a well-formed SHA-256 hex digest."""

    def __init__(self, value: str) -> None:
        super().__init__(f"not a valid sha256 hex digest: {value!r}")
        self.value = value


class QuotaExceededError(VTError):
    """The API key's request quota was exhausted (HTTP 429)."""

    def __init__(self, used: int, limit: int) -> None:
        super().__init__(f"API quota exceeded: {used}/{limit} requests")
        self.used = used
        self.limit = limit


class PermissionError_(VTError):
    """The API key lacks the privilege for the requested endpoint."""

    def __init__(self, endpoint: str) -> None:
        super().__init__(f"API key lacks privileges for endpoint: {endpoint}")
        self.endpoint = endpoint


class TransientError(ReproError):
    """A retryable failure (HTTP 429/5xx class, or a backend write timeout).

    The request itself was well-formed; retrying with backoff is the
    correct response.  ``status`` carries the HTTP-style status code the
    real service would have returned.  Deliberately parented on
    :class:`ReproError` rather than :class:`VTError`: the store's fault
    layer raises it for injected write failures too, and the collector
    retries all transient failures uniformly.
    """

    def __init__(self, detail: str = "transient service failure",
                 status: int = 500) -> None:
        super().__init__(f"{detail} (HTTP {status})")
        self.status = status


class ServiceUnavailableError(TransientError):
    """The endpoint is down for a sustained period (HTTP 503).

    Raised by the feed during an outage window: unlike a one-off
    :class:`TransientError`, an immediate retry is pointless — the caller
    should record the gap and backfill once the service recovers.
    """

    def __init__(self, detail: str = "service unavailable") -> None:
        super().__init__(detail, status=503)


class FeedNotAttachedError(VTError):
    """The premium feed was polled without ever having been attached.

    An earlier revision silently returned an empty batch here (and still
    counted it in ``batches_served``), which made a misconfigured
    collector indistinguishable from a quiet feed.
    """

    def __init__(self) -> None:
        super().__init__(
            "premium feed polled before attach(); a never-attached feed "
            "receives no reports"
        )


class ArchiveExpiredError(VTError):
    """A feed-archive minute older than the retention window was requested.

    Mirrors the real feed's bounded catch-up window: per-minute batches
    can be re-fetched only for the last N days.
    """

    def __init__(self, minute: int, horizon: int) -> None:
        super().__init__(
            f"feed archive no longer holds minute {minute} "
            f"(retention horizon is minute {horizon})"
        )
        self.minute = minute
        self.horizon = horizon


# --------------------------------------------------------------------------
# Report store errors
# --------------------------------------------------------------------------


class StoreError(ReproError):
    """Base class for report-store failures."""


class CorruptRecordError(StoreError):
    """A stored record failed checksum or structural validation."""


class UnknownSampleError(StoreError, KeyError):
    """A sample hash was requested that the store has never ingested."""

    def __init__(self, sha256: str) -> None:
        StoreError.__init__(self, f"store has no reports for sample {sha256}")
        self.sha256 = sha256


class BlockAddressError(StoreError, IndexError):
    """A ``(block, slot)`` address points past the shard's records.

    Dual-inherits :class:`IndexError` (like :class:`UnknownSampleError`
    does :class:`KeyError`) so positional-access callers keep their
    idiomatic ``except IndexError`` while the API boundary exports a
    :class:`ReproError` — the exception contract reprolint's RPL104
    enforces over the store surface.
    """

    def __init__(self, detail: str) -> None:
        StoreError.__init__(self, detail)


class ShardClosedError(StoreError):
    """An ingest was attempted on a store that was already finalised."""


# --------------------------------------------------------------------------
# Parallel-executor errors
# --------------------------------------------------------------------------


class ExecutorError(ReproError):
    """Base class for elastic-executor failures (scheduling layer)."""


class ShardFailedError(ExecutorError):
    """One or more shard ranges exhausted their retry budget.

    Raised after the scheduler has drained every other range, so
    ``shard_keys`` lists *all* ranges that died — not just the first —
    and the attached :class:`~repro.parallel.scheduler.ExecutorReport`
    carries the full attempt/retry accounting of the run.
    """

    def __init__(self, shard_keys, report=None) -> None:
        keys = tuple(sorted(shard_keys))
        super().__init__(
            f"{len(keys)} shard range(s) failed after exhausting retries: "
            f"{', '.join(keys)}"
        )
        self.shard_keys = keys
        self.report = report


class ShardDigestError(ExecutorError):
    """A retried shard produced different bytes than an earlier attempt.

    Per-sample keyed RNG makes every shard a pure function of
    ``(config, range)``; two attempts disagreeing means the determinism
    contract is broken somewhere, and merging either result would be
    unsound.
    """

    def __init__(self, shard_key: str, expected: str, got: str) -> None:
        super().__init__(
            f"shard {shard_key} is not bit-reproducible across attempts: "
            f"payload digest {got[:12]}… != checkpointed {expected[:12]}…"
        )
        self.shard_key = shard_key
        self.expected = expected
        self.got = got


# --------------------------------------------------------------------------
# Collector errors
# --------------------------------------------------------------------------


class CollectError(ReproError):
    """Base class for resilient-collector failures."""


class CheckpointError(CollectError):
    """A collector checkpoint file is missing fields, corrupt, or does not
    match the store it claims to describe."""


# --------------------------------------------------------------------------
# Static-analysis (reprolint) errors
# --------------------------------------------------------------------------


class LintError(ReproError):
    """The linter itself failed: unreadable file, syntax error, bad config.

    Distinct from *findings* — a finding is a successful lint result and
    maps to exit code 1; a :class:`LintError` is an internal error and
    maps to exit code 2 (the CLI-wide convention).
    """


# --------------------------------------------------------------------------
# Analysis errors
# --------------------------------------------------------------------------


class AnalysisError(ReproError):
    """Base class for analysis-layer failures."""


class InsufficientDataError(AnalysisError):
    """An analysis needs more observations than the input provides."""

    def __init__(self, needed: int, got: int, what: str = "observations") -> None:
        super().__init__(f"need at least {needed} {what}, got {got}")
        self.needed = needed
        self.got = got
