"""Parallel experiment orchestration: fan out shard ranges, merge stores.

``run_parallel`` partitions the scenario into more ranges than workers
(``policy.fanout`` per worker), submits them to an elastic executor
(:mod:`repro.parallel.executors`) driven by the failure-aware scheduler
(:mod:`repro.parallel.scheduler`), and streams completed frozen shards
into the merge (:class:`~repro.store.merge.StreamingMerge`).  The result
is bit-identical to a serial run — and, by the same construction, to a
chaos run with injected crashes, hangs and corrupted payloads: per-shard
bytes are a pure function of ``(config, range)``, merge keys reproduce
the serial ingest order, and the merge re-blocks purely by record
sequence, so neither worker count, executor kind, completion order nor
retry history can perturb the final store.

Executor selection: ``auto`` prefers fork and falls back to spawn;
platforms without fork get real multi-process execution rather than the
old silent serial fallback.  The single-range case (and ``workers=1``)
still short-circuits to the in-process serial path.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.obs import get_registry
from repro.parallel.executors import make_executor
from repro.parallel.executors import fork_available as _pool_fork_available
from repro.parallel.executors.base import ShardTask
from repro.parallel.scheduler import ExecutorPolicy, ShardScheduler
from repro.parallel.sharding import partition_samples
from repro.parallel.worker import ShardRun, _run_shard_task  # noqa: F401  (re-export)
from repro.store.cache import DEFAULT_CACHE_BYTES
from repro.store.merge import (
    FrozenMonth,
    FrozenShard,
    MergeStats,
    StreamingMerge,
    concat_frozen,
)
from repro.store.reportstore import ReportStore
from repro.synth.population import PopulationGenerator
from repro.synth.scenario import ScenarioConfig
from repro.vt.engines import EngineFleet, default_fleet


def fork_available() -> bool:
    """Whether this platform supports fork-based worker processes.

    Kept as a module-level indirection (rather than importing the
    executors' copy directly into callers) so tests can monkeypatch
    ``runner.fork_available`` to simulate fork-less platforms.
    """
    return _pool_fork_available()


def coerce_policy(executor) -> ExecutorPolicy:
    """Accept ``None`` / a kind string / a full policy, uniformly."""
    if executor is None:
        return ExecutorPolicy()
    if isinstance(executor, ExecutorPolicy):
        return executor
    if isinstance(executor, str):
        return ExecutorPolicy(kind=executor)
    raise ConfigError(
        f"executor must be None, a kind string or an ExecutorPolicy, "
        f"got {type(executor).__name__}")


def frozen_shard_of(run: ShardRun, shas: list[str]) -> FrozenShard:
    """Repackage one worker's result for the merge.

    The merge key shipped by workers is ``(scan_time, global index)``;
    the sample hash for the index is recomputed by the driver (it is a
    pure function of ``(seed, index)``), which keeps worker payloads
    free of 64-byte hash strings for every record.
    """
    months = {}
    for month, sm in run.months.items():
        months[month] = FrozenMonth(
            blocks=sm.compressed_blocks(),
            report_count=sm.report_count,
            verbose_bytes=sm.verbose_bytes,
            encoded_bytes=sm.encoded_bytes,
            keys=sm.keys,
            shas=[shas[index] for _, index in sm.keys],
            scan_times=[when for when, _ in sm.keys],
        )
    return FrozenShard(months=months, sample_meta=run.sample_meta)


def merge_shard_runs(
    config: ScenarioConfig, runs: list[ShardRun], metrics=None
) -> tuple[ReportStore, MergeStats]:
    """Merge worker results into one sealed store in serial ingest order."""
    generator = PopulationGenerator(config)
    shas = [generator.sha_for(i) for i in range(config.n_samples)]
    sources = [frozen_shard_of(run, shas)
               for run in sorted(runs, key=lambda r: r.shard_index)]
    cache_bytes = (config.store_cache_bytes
                   if config.store_cache_bytes is not None
                   else DEFAULT_CACHE_BYTES)
    return concat_frozen(sources, block_records=config.block_records,
                         cache_bytes=cache_bytes, metrics=metrics,
                         block_format=config.block_format)


def run_parallel(
    config: ScenarioConfig,
    fleet: EngineFleet | None = None,
    workers: int = 2,
    metrics=None,
    executor=None,
):
    """Run one scenario across ``workers`` processes; returns the data.

    ``executor`` is ``None``, an executor kind string (``auto``,
    ``in-process``, ``fork``, ``spawn``) or a full
    :class:`~repro.parallel.scheduler.ExecutorPolicy` (fan-out,
    heartbeat deadline, retry budget, chaos plan).

    The returned :class:`~repro.analysis.experiment.ExperimentData` has
    ``service=None`` — worker services die with their processes, and no
    analysis pipeline needs a live service (the CLI's load-from-store
    path already runs without one).  Callers that need the service (e.g.
    the snapshot-campaign comparison) run serially.

    With an enabled ``metrics`` registry each worker records into its
    own registry and ships a snapshot; the snapshots are folded into
    ``metrics`` in shard order and the merged store's whole-run gauges
    are published, so the final export is byte-identical to a serial
    run's (the metric side of the equivalence gate).  Scheduling
    telemetry — retries, steals, lost workers, heartbeat lag — goes to
    the process-wide registry instead, via
    :meth:`~repro.parallel.scheduler.ExecutorReport.publish`.
    """
    from repro.analysis.experiment import ExperimentData, run_experiment

    policy = coerce_policy(executor)
    kind = policy.kind
    if kind == "auto":
        kind = "fork" if fork_available() else "spawn"
    elif kind == "fork" and not fork_available():
        raise ConfigError("executor kind 'fork' is unavailable on this "
                          "platform; use 'spawn' or 'auto'")

    ranges = [s for s in partition_samples(config.n_samples,
                                           workers * policy.fanout)
              if s.size]
    if len(ranges) <= 1:
        return run_experiment(config, fleet=fleet, workers=1,
                              metrics=metrics)
    workers_started = min(workers, len(ranges))

    with_metrics = metrics is not None and metrics.enabled
    tasks = [
        ShardTask(key=f"shard-{shard.shard_index:03d}", shard=shard,
                  attempt=0, config=config, fleet=fleet,
                  with_metrics=with_metrics, plan=policy.fault_plan)
        for shard in ranges
    ]

    generator = PopulationGenerator(config)
    shas = [generator.sha_for(i) for i in range(config.n_samples)]
    cache_bytes = (config.store_cache_bytes
                   if config.store_cache_bytes is not None
                   else DEFAULT_CACHE_BYTES)
    streaming = StreamingMerge(block_records=config.block_records,
                               cache_bytes=cache_bytes, metrics=metrics,
                               block_format=config.block_format)
    snapshots: dict[int, object] = {}
    events_total = 0

    def on_result(run: ShardRun) -> None:
        nonlocal events_total
        events_total += run.events_executed
        if with_metrics and run.metrics is not None:
            snapshots[run.shard_index] = run.metrics
        streaming.add(frozen_shard_of(run, shas))

    engine = make_executor(
        kind, heartbeat_interval=policy.effective_heartbeat_interval)
    scheduler = ShardScheduler(engine, policy, tasks, on_result)
    report = scheduler.run(workers_started)

    if with_metrics:
        for shard_index in sorted(snapshots):
            metrics.merge(snapshots[shard_index])
    store, merge_stats = streaming.finish()
    store.publish_metrics()
    report.publish(get_registry())
    return ExperimentData(
        config=config,
        fleet=fleet if fleet is not None else default_fleet(config.seed),
        service=None,
        store=store,
        events_executed=events_total,
        workers=workers_started,
        merge_stats=merge_stats,
        metrics=metrics,
        executor_report=report,
    )
