"""Dynamics metrics over AV-Rank series (§5.3).

Three measurements drive Figures 5-7:

* ``adjacent_deltas`` — δ_i = |p_i − p_{i−1}| over consecutive scans;
* ``overall_delta`` — Δ = p_max − p_min per sample;
* ``pairwise_differences`` — |p_i − p_j| against the time interval
  |t_i − t_j| for scan *pairs*, the data behind Figure 7 and its
  Spearman correlation (ρ = 0.9181 in the paper).

Pairwise enumeration is quadratic per sample; a per-sample pair cap keeps
hot samples (thousands of scans) from dominating, with capped pairs drawn
deterministically.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.avrank import AVRankSeries
from repro.stats.descriptive import boxplot_stats, mean
from repro.stats.spearman import SpearmanResult, spearman
from repro.vt.clock import MINUTES_PER_DAY


def adjacent_deltas(series: Iterable[AVRankSeries]) -> list[int]:
    """All δ_i values pooled across samples (Figure 5's δ CDF)."""
    out: list[int] = []
    for s in series:
        out.extend(s.adjacent_deltas())
    return out


def overall_delta(series: Iterable[AVRankSeries]) -> list[int]:
    """All per-sample Δ values (Figure 5's Δ CDF)."""
    return [s.delta_overall for s in series]


def deltas_by_file_type(
    series: Iterable[AVRankSeries],
) -> tuple[dict[str, list[int]], dict[str, list[int]]]:
    """Pooled δ and Δ grouped by file type (Figure 6)."""
    adjacent: dict[str, list[int]] = defaultdict(list)
    overall: dict[str, list[int]] = defaultdict(list)
    for s in series:
        adjacent[s.file_type].extend(s.adjacent_deltas())
        overall[s.file_type].append(s.delta_overall)
    return dict(adjacent), dict(overall)


@dataclass(frozen=True)
class PairwiseDifferences:
    """Scan-pair (interval, AV-Rank difference) observations (Figure 7)."""

    interval_days: tuple[float, ...]
    rank_diffs: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.rank_diffs)

    def binned(
        self, bin_days: float = 30.0
    ) -> dict[int, list[int]]:
        """Group differences into interval bins (the figure's boxes)."""
        bins: dict[int, list[int]] = defaultdict(list)
        for interval, diff in zip(self.interval_days, self.rank_diffs, strict=False):
            bins[int(interval // bin_days)].append(diff)
        return dict(bins)

    def interval_correlation(self) -> SpearmanResult:
        """Spearman correlation of difference vs interval (§5.3.5).

        The paper reports the correlation over the binned trend (its
        quoted ρ = 0.9181 with a boxplot per interval bucket); this
        correlates per-day bucket means, which reproduces that headline
        and is robust to the raw pairs' heavy within-bucket noise.
        """
        by_bucket: dict[int, list[int]] = defaultdict(list)
        for interval, diff in zip(self.interval_days, self.rank_diffs, strict=False):
            by_bucket[int(interval // 7)].append(diff)
        # Thin buckets (a handful of very long intervals) are pure noise;
        # require a minimum occupancy before a bucket enters the trend.
        buckets = sorted(b for b, v in by_bucket.items() if len(v) >= 20)
        means = [mean(by_bucket[b]) for b in buckets]
        return spearman([float(b) for b in buckets], means)

    def raw_correlation(self) -> SpearmanResult:
        """Spearman correlation over the raw (interval, diff) pairs."""
        return spearman(self.interval_days, [float(d) for d in self.rank_diffs])


def pairwise_differences(
    series: Iterable[AVRankSeries],
    max_pairs_per_sample: int = 200,
    seed: int = 0,
) -> PairwiseDifferences:
    """All-pairs AV-Rank differences vs scan intervals (§5.3.5).

    Samples with more than ``max_pairs_per_sample`` pairs contribute a
    deterministic random subset, so hot samples cannot swamp the pool.
    """
    intervals: list[float] = []
    diffs: list[int] = []
    rng = random.Random(f"pairwise:{seed}")
    for s in series:
        n = s.n
        total_pairs = n * (n - 1) // 2
        if total_pairs <= max_pairs_per_sample:
            pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        else:
            pairs = [
                tuple(sorted(rng.sample(range(n), 2)))
                for _ in range(max_pairs_per_sample)
            ]
        for i, j in pairs:
            intervals.append((s.times[j] - s.times[i]) / MINUTES_PER_DAY)
            diffs.append(abs(s.ranks[j] - s.ranks[i]))
    return PairwiseDifferences(tuple(intervals), tuple(diffs))


def summarize_by_file_type(
    grouped: dict[str, list[int]],
) -> dict[str, "BoxSummary"]:
    """Box-plot summaries per file type (the rows of Figure 6)."""
    return {ftype: BoxSummary.of(values)
            for ftype, values in grouped.items() if values}


@dataclass(frozen=True)
class BoxSummary:
    """Mean/median pair plus the box-plot geometry the figures draw."""

    count: int
    mean: float
    median: float
    q1: float
    q3: float

    @classmethod
    def of(cls, values: Sequence[int | float]) -> "BoxSummary":
        stats = boxplot_stats(values)
        return cls(
            count=stats.count,
            mean=stats.mean,
            median=stats.median,
            q1=stats.q1,
            q3=stats.q3,
        )
