"""Unit tests for the API layer (repro.vt.api): quotas and endpoints."""

import pytest

from repro.errors import NotFoundError, PermissionError_, QuotaExceededError
from repro.vt import clock
from repro.vt.api import FREE_DAILY_QUOTA, APIKey, VTClient
from repro.vt.samples import Sample, sha256_of
from repro.vt.service import VirusTotalService


@pytest.fixture()
def service():
    return VirusTotalService(seed=5)


def _sample(token: str = "api") -> Sample:
    return Sample(
        sha256=sha256_of(token),
        file_type="PDF",
        malicious=False,
        first_seen=clock.minutes(days=2),
    )


class TestAPIKey:
    def test_free_key_charges_per_day(self):
        key = APIKey("k", daily_quota=2)
        key.charge(day=0)
        key.charge(day=0)
        with pytest.raises(QuotaExceededError):
            key.charge(day=0)
        key.charge(day=1)  # new day, fresh quota

    def test_premium_key_uncapped(self):
        key = APIKey("k", premium=True, daily_quota=1)
        for _ in range(100):
            key.charge(day=0)

    def test_usage_tracking(self):
        key = APIKey("k")
        assert key.used_on(0) == 0
        key.charge(0)
        assert key.used_on(0) == 1

    def test_default_quota_matches_public_tier(self):
        assert APIKey("k").daily_quota == FREE_DAILY_QUOTA


class TestEndpoints:
    def test_upload_then_report_round_trip(self, service):
        client = VTClient(service, premium=True)
        s = _sample()
        uploaded = client.upload(s, s.first_seen)
        fetched = client.report(s.sha256, s.first_seen + 10)
        assert fetched == uploaded

    def test_rescan_generates_new_report(self, service):
        client = VTClient(service, premium=True)
        s = _sample()
        client.upload(s, s.first_seen)
        later = s.first_seen + clock.minutes(days=1)
        rescanned = client.rescan(s.sha256, later)
        assert rescanned.last_analysis_date == later

    def test_report_for_unknown_hash_raises(self, service):
        client = VTClient(service, premium=True)
        with pytest.raises(NotFoundError):
            client.report(sha256_of("missing"), 0)

    def test_quota_enforced_across_endpoints(self, service):
        client = VTClient(service, daily_quota=2)
        s = _sample()
        client.upload(s, 100)
        client.report(s.sha256, 200)
        with pytest.raises(QuotaExceededError):
            client.rescan(s.sha256, 300)

    def test_quota_resets_next_day(self, service):
        client = VTClient(service, daily_quota=1)
        s = _sample()
        client.upload(s, 0)
        next_day = clock.minutes(days=1) + 1
        client.rescan(s.sha256, next_day)

    def test_require_premium_gate(self, service):
        free = VTClient(service)
        with pytest.raises(PermissionError_):
            free.require_premium("feed")
        VTClient(service, premium=True).require_premium("feed")
