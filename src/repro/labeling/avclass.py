"""Dataset-level family labelling — the AVClass-style batch workflow.

:mod:`repro.labeling.families` votes over one report; real labelling runs
over a corpus, where two more AVClass ideas matter:

* **generic-token discovery** — a token naming a detection *category*
  rather than a family appears across an implausibly large share of
  samples; such tokens are learned from the corpus and suppressed;
* **alias resolution** — two tokens that co-occur on the same samples
  almost always name the same family; the rarer one is folded into the
  more common one.

:class:`CorpusLabeler` implements both over ``{sha256: {engine: label}}``
corpora and produces per-sample :class:`~repro.labeling.families.FamilyVote`
results plus corpus-level family prevalence.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ConfigError
from repro.labeling.families import FamilyVote, label_family
from repro.labeling.tokens import normalize_label


@dataclass(frozen=True)
class CorpusProfile:
    """What the labeller learned from a corpus."""

    #: Tokens suppressed as generic (too widespread to be a family).
    generic_tokens: frozenset[str]
    #: Alias -> canonical family mapping.
    aliases: dict[str, str]
    #: Samples per surviving family token.
    family_prevalence: Counter

    def top_families(self, n: int = 10) -> list[tuple[str, int]]:
        return self.family_prevalence.most_common(n)


class CorpusLabeler:
    """Learn corpus-level token statistics, then label samples.

    Parameters mirror AVClass's defaults in spirit:

    * ``generic_threshold`` — a token seen on more than this fraction of
      *labelled* samples is generic (families are never the majority of
      a diverse corpus);
    * ``alias_cooccurrence`` — fold token B into token A when at least
      this fraction of B's samples also carry A and A is more common.
    """

    def __init__(
        self,
        generic_threshold: float = 0.35,
        alias_cooccurrence: float = 0.9,
        min_token_samples: int = 2,
    ) -> None:
        if not 0.0 < generic_threshold <= 1.0:
            raise ConfigError("generic_threshold must be in (0,1]")
        if not 0.0 < alias_cooccurrence <= 1.0:
            raise ConfigError("alias_cooccurrence must be in (0,1]")
        self.generic_threshold = generic_threshold
        self.alias_cooccurrence = alias_cooccurrence
        self.min_token_samples = min_token_samples
        self._profile: CorpusProfile | None = None

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------

    def fit(
        self, corpus: Mapping[str, Mapping[str, str | None]]
    ) -> CorpusProfile:
        """Learn generic tokens and aliases from a detection corpus."""
        token_samples: dict[str, set[str]] = defaultdict(set)
        labelled_samples: set[str] = set()
        for sha256, detections in corpus.items():
            tokens = self._sample_tokens(detections)
            if tokens:
                labelled_samples.add(sha256)
            for token in tokens:
                token_samples[token].add(sha256)

        n_labelled = max(1, len(labelled_samples))
        generic = {
            token for token, shas in token_samples.items()
            if len(shas) / n_labelled > self.generic_threshold
        }
        survivors = {
            token: shas for token, shas in token_samples.items()
            if token not in generic
            and len(shas) >= self.min_token_samples
        }

        aliases: dict[str, str] = {}
        # Deterministic canonical order: most samples first, ties broken
        # alphabetically (set/dict iteration would vary per process).
        by_count = sorted(survivors, key=lambda t: (-len(survivors[t]), t))
        for i, canonical in enumerate(by_count):
            for candidate in by_count[i + 1:]:
                if candidate in aliases:
                    continue
                overlap = survivors[candidate] & survivors[canonical]
                if (len(overlap) / len(survivors[candidate])
                        >= self.alias_cooccurrence):
                    aliases[candidate] = canonical

        prevalence: Counter = Counter()
        for token, shas in survivors.items():
            prevalence[aliases.get(token, token)] += len(shas)
        self._profile = CorpusProfile(
            generic_tokens=frozenset(generic),
            aliases=aliases,
            family_prevalence=prevalence,
        )
        return self._profile

    @staticmethod
    def _sample_tokens(
        detections: Mapping[str, str | None]
    ) -> set[str]:
        tokens: set[str] = set()
        for label in detections.values():
            if label:
                tokens.update(normalize_label(label))
        return tokens

    # ------------------------------------------------------------------
    # Labelling
    # ------------------------------------------------------------------

    @property
    def profile(self) -> CorpusProfile:
        if self._profile is None:
            raise ConfigError("labeler not fitted; call fit() first")
        return self._profile

    def label(self, detections: Mapping[str, str | None]) -> FamilyVote:
        """Label one sample using the learned corpus profile."""
        profile = self.profile
        cleaned: dict[str, str | None] = {}
        for engine, raw in detections.items():
            if not raw:
                cleaned[engine] = None
                continue
            candidates = [
                profile.aliases.get(token, token)
                for token in normalize_label(raw)
                if token not in profile.generic_tokens
            ]
            # Re-encode the candidate (if any) as a trivially
            # re-tokenisable label for the plurality vote.
            cleaned[engine] = candidates[0] if candidates else None
        return label_family(cleaned)

    def label_corpus(
        self, corpus: Mapping[str, Mapping[str, str | None]]
    ) -> dict[str, FamilyVote]:
        """Fit (if needed) and label every sample of a corpus."""
        if self._profile is None:
            self.fit(corpus)
        return {sha256: self.label(detections)
                for sha256, detections in corpus.items()}


def accuracy_against_truth(
    votes: Mapping[str, FamilyVote],
    truth: Mapping[str, str | None],
    confident_only: bool = True,
) -> float:
    """Fraction of (confident) votes naming the true family.

    Samples with no true family (benign) are excluded, matching how
    AVClass accuracy is reported.
    """
    hits = 0
    considered = 0
    for sha256, vote in votes.items():
        expected = truth.get(sha256)
        if expected is None:
            continue
        if confident_only and not vote.confident:
            continue
        considered += 1
        if vote.family == expected:
            hits += 1
    return hits / considered if considered else 0.0


def build_corpus_from_store(
    store, engine_names: Iterable[str], service
) -> tuple[dict[str, dict[str, str | None]], dict[str, str | None]]:
    """Materialise a detection-string corpus from a report store.

    Uses each sample's final report; detection strings are synthesised
    per engine from the sample's ground-truth family (benign samples and
    undetecting engines contribute ``None``).  Returns (corpus, truth).
    """
    from repro.labeling.families import detection_string
    from repro.vt.filetypes import FILE_TYPES

    names = list(engine_names)
    corpus: dict[str, dict[str, str | None]] = {}
    truth: dict[str, str | None] = {}
    for sha256, reports in store.iter_sample_reports():
        sample = service.get_sample(sha256)
        category = FILE_TYPES[sample.file_type].category
        final = reports[-1]
        corpus[sha256] = {
            result.engine: (
                detection_string(result.engine, sample.family, category,
                                 sha256)
                if result.detected else None
            )
            for result in final.iter_results(names)
        }
        truth[sha256] = sample.family
    return corpus, truth
