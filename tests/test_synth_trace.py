"""Tests for workload trace export/replay (repro.synth.trace)."""

import json

import pytest

from repro.errors import ConfigError
from repro.synth.population import PopulationGenerator
from repro.synth.scenario import tiny_scenario
from repro.synth.trace import (
    export_scenario_trace,
    export_trace,
    load_trace,
    replay_trace,
)


@pytest.fixture()
def trace_path(tmp_path):
    config = tiny_scenario(n_samples=80, seed=31)
    path = tmp_path / "workload.jsonl"
    count = export_scenario_trace(config, path)
    assert count == 80
    return path


class TestExportLoad:
    def test_round_trip_preserves_specs(self, trace_path):
        config = tiny_scenario(n_samples=80, seed=31)
        original = list(PopulationGenerator(config))
        loaded = list(load_trace(trace_path))
        assert len(loaded) == len(original)
        for a, b in zip(original, loaded, strict=False):
            assert a.sample.sha256 == b.sample.sha256
            assert a.sample.file_type == b.sample.file_type
            assert a.sample.malicious == b.sample.malicious
            assert a.sample.first_seen == b.sample.first_seen
            assert a.scan_times == b.scan_times
            assert a.sample.family == b.sample.family

    def test_blank_lines_skipped(self, tmp_path, trace_path):
        doubled = tmp_path / "spaced.jsonl"
        doubled.write_text(
            "\n" + trace_path.read_text().replace("\n", "\n\n")
        )
        assert len(list(load_trace(doubled))) == 80

    def test_export_trace_returns_count(self, tmp_path):
        config = tiny_scenario(n_samples=5, seed=1)
        n = export_trace(PopulationGenerator(config), tmp_path / "t.jsonl")
        assert n == 5


class TestValidation:
    def _write(self, tmp_path, record):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(record) + "\n")
        return path

    def test_unknown_file_type_rejected(self, tmp_path):
        path = self._write(tmp_path, {
            "sha256": "a" * 64, "file_type": "NOPE", "malicious": False,
            "first_seen": 0, "scan_times": [0],
        })
        with pytest.raises(ConfigError, match="bad.jsonl:1"):
            list(load_trace(path))

    def test_empty_scan_times_rejected(self, tmp_path):
        path = self._write(tmp_path, {
            "sha256": "a" * 64, "file_type": "TXT", "malicious": False,
            "first_seen": 0, "scan_times": [],
        })
        with pytest.raises(ConfigError):
            list(load_trace(path))

    def test_non_increasing_times_rejected(self, tmp_path):
        path = self._write(tmp_path, {
            "sha256": "a" * 64, "file_type": "TXT", "malicious": False,
            "first_seen": 0, "scan_times": [10, 10],
        })
        with pytest.raises(ConfigError):
            list(load_trace(path))

    def test_missing_field_rejected(self, tmp_path):
        path = self._write(tmp_path, {"sha256": "a" * 64})
        with pytest.raises(ConfigError):
            list(load_trace(path))


class TestReplay:
    def test_replay_produces_all_reports(self, trace_path):
        service, store = replay_trace(trace_path, seed=31)
        config = tiny_scenario(n_samples=80, seed=31)
        expected = sum(
            spec.n_reports for spec in PopulationGenerator(config)
        )
        assert store.report_count == expected
        assert store.sample_count == 80
        assert store.closed

    def test_replay_matches_run_experiment(self, trace_path):
        """Replaying an exported scenario reproduces run_experiment."""
        from repro.analysis.experiment import run_experiment

        _, store = replay_trace(trace_path, seed=31)
        direct = run_experiment(tiny_scenario(n_samples=80, seed=31))
        replayed = {(r.sha256, r.scan_time): r.positives
                    for r in store.iter_reports()}
        original = {(r.sha256, r.scan_time): r.positives
                    for r in direct.store.iter_reports()}
        assert replayed == original

    def test_replay_deterministic(self, trace_path):
        _, a = replay_trace(trace_path, seed=31)
        _, b = replay_trace(trace_path, seed=31)
        assert ([r.positives for r in a.iter_reports()]
                == [r.positives for r in b.iter_reports()])
