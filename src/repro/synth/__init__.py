"""Synthetic workload generation.

The paper's dataset is the full 14-month VirusTotal submission stream;
this subpackage generates a statistically faithful, scaled-down stand-in:
sample populations matching Table 3's file-type mix and Figure 1's
reports-per-sample distribution (:mod:`repro.synth.population`), latent
ground truth and family assignment (:mod:`repro.synth.groundtruth`),
submission/rescan schedules (:mod:`repro.synth.submissions`) and scenario
presets bundling everything (:mod:`repro.synth.scenario`).
"""

from repro.synth.scenario import (
    ScenarioConfig,
    chaos_scenario,
    dynamics_scenario,
    paper_scenario,
    tiny_scenario,
)
from repro.synth.population import PopulationGenerator, SampleSpec
from repro.synth.trace import (
    export_scenario_trace,
    export_trace,
    load_trace,
    replay_trace,
)

__all__ = [
    "ScenarioConfig",
    "chaos_scenario",
    "dynamics_scenario",
    "paper_scenario",
    "tiny_scenario",
    "PopulationGenerator",
    "SampleSpec",
    "export_scenario_trace",
    "export_trace",
    "load_trace",
    "replay_trace",
]
