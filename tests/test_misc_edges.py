"""Edge-case tests sweeping smaller surfaces across the package."""

import pytest

from repro.store.stats import MonthStats, compute_store_stats
from repro.store.reportstore import ReportStore
from repro.vt.clock import COLLECTION_MONTHS

from conftest import make_report, make_sha


class TestMonthStats:
    def test_gb_conversions(self):
        stats = MonthStats(0, "05/2021", 10, 2_000_000_000, 150_000_000)
        assert stats.verbose_gb == pytest.approx(2.0)
        assert stats.compressed_gb == pytest.approx(0.15)

    def test_empty_months_filled(self):
        store = ReportStore()
        store.ingest(make_report(scan_time=1000))
        stats = compute_store_stats(store)
        assert len(stats.months) == COLLECTION_MONTHS
        assert stats.months[0].report_count == 1
        assert all(m.report_count == 0 for m in stats.months[1:])


class TestStoreEdges:
    def test_single_report_sample_round_trip(self):
        store = ReportStore(block_records=1)
        report = make_report()
        store.ingest(report)
        assert store.reports_for(report.sha256) == [report]

    def test_duplicate_scan_times_preserved(self):
        store = ReportStore()
        sha = make_sha("dup")
        store.ingest(make_report(sha=sha, scan_time=500))
        store.ingest(make_report(sha=sha, scan_time=500))
        assert store.report_count_of(sha) == 2

    def test_iter_sample_reports_on_empty_store(self):
        assert list(ReportStore().iter_sample_reports()) == []


class TestRenderingEdges:
    def test_sparkline_respects_width(self):
        from repro.analysis.rendering import sparkline

        line = sparkline(list(range(500)), width=40)
        assert len(line) <= 40

    def test_ascii_table_empty_rows(self):
        from repro.analysis.rendering import ascii_table

        out = ascii_table(["a", "b"], [])
        assert out.splitlines()[0].strip().startswith("a")

    def test_pct_rounding(self):
        from repro.analysis.rendering import pct

        assert pct(1.0) == "100.00%"
        assert pct(0.0) == "0.00%"


class TestAggregatorLabels:
    def test_percentage_label_coding(self):
        from repro.core.aggregation import PercentageAggregator

        report = make_report(labels=[1, 1, 0, 0, 0])
        assert PercentageAggregator(0.4).label(report) == "M"
        assert PercentageAggregator(0.9).label(report) == "B"


class TestScenarioEdges:
    def test_forced_report_count_validation(self):
        from repro.errors import ConfigError
        from repro.synth.scenario import ScenarioConfig

        with pytest.raises(ConfigError):
            ScenarioConfig(forced_report_count=0)
        assert ScenarioConfig(forced_report_count=7).forced_report_count == 7

    def test_interval_sigma_validation(self):
        from repro.errors import ConfigError
        from repro.synth.scenario import ScenarioConfig

        with pytest.raises(ConfigError):
            ScenarioConfig(interval_sigma=0.0)


class TestTrendParamsDefaults:
    def test_min_movement_respected(self):
        from repro.core.trends import Trend, TrendParams, classify_trend

        from test_avrank import series

        params = TrendParams(min_movement=5)
        assert classify_trend(series([1, 3]), params) is Trend.FLAT
        assert classify_trend(series([1, 9]), params) is not Trend.FLAT


class TestCLIStorePath:
    def test_dynamics_from_saved_store(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "round.store"
        assert main(["--samples", "250", "--seed", "6",
                     "generate", str(path)]) == 0
        capsys.readouterr()
        assert main(["--store", str(path), "--seed", "6",
                     "stabilization"]) == 0
        out = capsys.readouterr().out
        assert "Observation 8" in out
