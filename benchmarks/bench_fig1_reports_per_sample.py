"""Figure 1: CDF of the number of reports per sample.

Paper landmarks: 88.81 % of samples have exactly one report, 99.10 % fewer
than six, 99.90 % fewer than twenty; the tail is extreme (one sample had
64,168 reports).
"""

from __future__ import annotations

from functools import partial

from repro.analysis.dataset import ReportsPerSample
from repro.analysis.rendering import render_fig1

from conftest import run_once, say


def test_fig1_reports_per_sample(benchmark, bench_paper_data):
    result = run_once(
        benchmark, partial(ReportsPerSample.from_store,
                           bench_paper_data.store)
    )
    say()
    say(render_fig1(result))

    assert abs(result.single_report_fraction - 0.8881) < 0.04
    assert result.under_6_fraction > 0.95
    assert result.under_20_fraction > 0.97
    # Heavy tail: some sample far above the median count.
    assert result.max_reports > 20
