"""Report rendering: human text and byte-deterministic JSON lines.

Same house style as :mod:`repro.obs.export`: the JSON format is one
schema line followed by one compact, key-sorted JSON object per finding,
in the engine's global ``(path, line, col, code)`` order — two runs over
the same tree produce byte-identical reports.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.config import RULE_SUMMARIES
from repro.lint.engine import LintResult

#: JSON report schema identifier, bumped on incompatible changes.
JSON_SCHEMA = "reprolint/1"


def json_lines(result: LintResult) -> list[str]:
    """Schema line + one sorted JSON line per active finding."""
    head = {
        "schema": JSON_SCHEMA,
        "files_checked": result.files_checked,
        "findings": len(result.findings),
        "suppressed": len(result.suppressed),
    }
    lines = [json.dumps(head, sort_keys=True, separators=(",", ":"))]
    for f in result.findings:
        lines.append(json.dumps(
            {"path": f.path, "line": f.line, "col": f.col,
             "code": f.code, "message": f.message},
            sort_keys=True, separators=(",", ":")))
    return lines


def render_json(result: LintResult) -> str:
    return "\n".join(json_lines(result)) + "\n"


def render_text(result: LintResult) -> str:
    """The human report: one grep-able line per finding plus a summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.code} {f.message}"
        for f in result.findings
    ]
    noun = "finding" if len(result.findings) == 1 else "findings"
    lines.append(
        f"{len(result.findings)} {noun} "
        f"({result.files_checked} files checked, "
        f"{len(result.suppressed)} suppressed by pragmas)")
    return "\n".join(lines) + "\n"


def render_rules() -> str:
    """The rule table (``repro-vt lint --explain``)."""
    width = max(len(code) for code in RULE_SUMMARIES)
    return "\n".join(
        f"{code:<{width}}  {RULE_SUMMARIES[code]}"
        for code in sorted(RULE_SUMMARIES)) + "\n"


def write_report(result: LintResult, path: str | Path,
                 fmt: str = "json") -> Path:
    """Write the rendered report to ``path``; returns the path."""
    path = Path(path)
    text = render_json(result) if fmt == "json" else render_text(result)
    path.write_text(text, encoding="utf-8")
    return path
