"""Unit tests for flip-cause attribution (repro.core.causes)."""

import math

import pytest

from repro.core.causes import attribute_causes

from conftest import make_report, make_sha


def _pair(labels_a, labels_b, versions_a=None, versions_b=None, sha="c"):
    sha256 = make_sha(sha)
    n = len(labels_a)
    return (sha256, [
        make_report(sha=sha256, scan_time=100, labels=labels_a,
                    versions=versions_a or [1] * n),
        make_report(sha=sha256, scan_time=200, labels=labels_b,
                    versions=versions_b or [1] * n),
    ])


class TestAttribution:
    def test_update_flip(self):
        breakdown = attribute_causes([_pair(
            [0, 0, 0, 0, 0], [1, 0, 0, 0, 0],
            versions_a=[1, 1, 1, 1, 1], versions_b=[2, 1, 1, 1, 1],
        )])
        assert breakdown.update_flips == 1
        assert breakdown.latency_flips == 0
        assert breakdown.update_share == 1.0

    def test_latency_flip(self):
        breakdown = attribute_causes([_pair(
            [0, 0, 0, 0, 0], [1, 0, 0, 0, 0],
        )])
        assert breakdown.update_flips == 0
        assert breakdown.latency_flips == 1
        assert breakdown.update_share == 0.0

    def test_activity_event(self):
        breakdown = attribute_causes([_pair(
            [1, 0, 0, 0, 0], [-1, 0, 0, 0, 0],
        )])
        assert breakdown.activity_events == 1
        assert breakdown.total_flips == 0
        assert breakdown.changed_pairs == 1  # positives moved 1 -> 0

    def test_changed_pairs_counts_rank_moves_only(self):
        breakdown = attribute_causes([_pair(
            [1, 0, 0, 0, 0], [1, 0, 0, 0, 0],
        )])
        assert breakdown.changed_pairs == 0
        assert breakdown.total_pairs == 1

    def test_mixed_events_in_one_pair(self):
        breakdown = attribute_causes([_pair(
            [0, 1, 0, 0, 0], [1, -1, 0, 0, 0],
            versions_a=[1, 1, 1, 1, 1], versions_b=[2, 2, 1, 1, 1],
        )])
        assert breakdown.update_flips == 1       # engine 0
        assert breakdown.activity_events == 1    # engine 1 dropped out
        assert breakdown.activity_share == pytest.approx(0.5)

    def test_nan_shares_with_no_events(self):
        breakdown = attribute_causes([])
        assert math.isnan(breakdown.update_share)
        assert math.isnan(breakdown.activity_share)

    def test_single_report_sample_no_pairs(self):
        sha = make_sha("one")
        breakdown = attribute_causes([(sha, [make_report(sha=sha)])])
        assert breakdown.total_pairs == 0
