"""Table 2: dataset overview — reports per month, sizes, totals.

Paper values (full scale): 847,567,045 reports / 571,120,263 samples over
14 months, 753 GB raw, compression rate 10.06x, 91.76 % fresh.  At
scenario scale the shapes to hold are: every month populated, per-month
volumes tracking the paper's monthly weighting (March 2022 heaviest), a
compression rate at least as good as the paper's, and the fresh share.
"""

from __future__ import annotations

from repro.analysis.rendering import render_table2
from repro.synth.scenario import MONTHLY_WEIGHTS

from conftest import run_once, say


def test_table2_dataset_overview(benchmark, bench_paper_data):
    stats = run_once(benchmark, bench_paper_data.store.stats)
    say()
    say(render_table2(stats))

    populated = [m for m in stats.months if m.report_count > 0]
    assert len(populated) == 14
    assert stats.total_reports == bench_paper_data.store.report_count
    assert stats.fresh_fraction > 0.85
    # The store's binary+zlib pipeline must beat the paper's 10.06x.
    assert stats.compression_rate > 10.06
    # Monthly shape: the heaviest month of the paper's weighting should
    # out-collect the lightest by a clear margin.
    heaviest = MONTHLY_WEIGHTS.index(max(MONTHLY_WEIGHTS))
    lightest = MONTHLY_WEIGHTS.index(min(MONTHLY_WEIGHTS))
    assert (stats.months[heaviest].report_count
            > stats.months[lightest].report_count)
