"""Deterministic fault plans.

A :class:`FaultPlan` is a *seeded, stateless* description of every fault
the chaos layer may inject: feed outage windows, transient HTTP-style
failures, dropped/duplicated/corrupted report deliveries, and store
write failures.  Every decision is a pure function of ``(seed, key)`` —
computed by hashing, never by consuming a shared RNG stream — so a run
that crashes and resumes sees exactly the faults a straight run would
have seen, and two runs with the same plan are bit-identical.  That is
the property the chaos acceptance test leans on: the faulty run must be
*reproducibly* faulty.

Per-call fault decisions are additionally capped by
``max_consecutive_failures``: the N-th retry of the same operation never
fails, so a collector with a deeper retry budget always makes progress.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.vt.clock import MINUTES_PER_DAY

_HASH_SPACE = float(2 ** 32)


def keyed_fraction(seed: int, *key: object) -> float:
    """A deterministic uniform draw in ``[0, 1)`` keyed on ``(seed, key)``.

    crc32 hashing instead of ``random.Random(...)`` keeps per-decision
    cost to one hash of a short string — the fault layer probes this on
    hot paths (once per simulated minute, once per shard attempt).
    """
    token = f"{seed}|" + "|".join(str(k) for k in key)
    return zlib.crc32(token.encode("utf-8")) / _HASH_SPACE


def keyed_chance(seed: int, rate: float, *key: object) -> bool:
    """A deterministic Bernoulli draw keyed on ``(seed, key)``."""
    if rate <= 0.0:
        return False
    return keyed_fraction(seed, *key) < rate


@dataclass(frozen=True)
class OutageWindow:
    """A half-open minute interval ``[start, end)`` during which the feed
    listener is effectively detached: reports of those minutes are lost
    from the delivery path (the archive still retains them)."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigError(
                f"outage window must satisfy 0 <= start < end, "
                f"got [{self.start}, {self.end})"
            )

    def __contains__(self, minute: int) -> bool:
        return self.start <= minute < self.end

    @property
    def minutes(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class FaultPlan:
    """Everything the chaos layer may do to one collection run."""

    seed: int = 0
    #: Feed outage windows (non-overlapping, sorted by start).
    outages: tuple[OutageWindow, ...] = ()
    #: Per-attempt probability that a feed poll or backfill/report API
    #: call fails with a retryable :class:`~repro.errors.TransientError`.
    transient_rate: float = 0.0
    #: Per-report probability the feed silently drops a delivery.
    drop_rate: float = 0.0
    #: Per-report probability the feed delivers a report twice.
    duplicate_rate: float = 0.0
    #: Per-report probability the delivered payload arrives corrupted
    #: (truncated or bit-damaged wire bytes).
    corrupt_rate: float = 0.0
    #: Per-attempt probability a store write raises a transient failure.
    store_failure_rate: float = 0.0
    #: Retries of the same operation beyond this attempt index always
    #: succeed, guaranteeing progress under any retry budget deeper than
    #: this.
    max_consecutive_failures: int = 2

    def __post_init__(self) -> None:
        for name in ("transient_rate", "drop_rate", "duplicate_rate",
                     "corrupt_rate", "store_failure_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0,1], got {value}")
        if self.max_consecutive_failures < 1:
            raise ConfigError("max_consecutive_failures must be >= 1")
        ordered = sorted(self.outages, key=lambda w: w.start)
        for a, b in zip(ordered, ordered[1:], strict=False):
            if b.start < a.end:
                raise ConfigError(
                    f"outage windows overlap: [{a.start},{a.end}) and "
                    f"[{b.start},{b.end})"
                )
        object.__setattr__(self, "outages", tuple(ordered))

    # ------------------------------------------------------------------
    # Keyed decisions
    # ------------------------------------------------------------------

    def _chance(self, rate: float, *key: object) -> bool:
        """A deterministic Bernoulli draw keyed on ``(seed, key)``."""
        return keyed_chance(self.seed, rate, *key)

    @property
    def disabled(self) -> bool:
        """Whether this plan can never inject anything."""
        return (not self.outages
                and self.transient_rate == 0.0
                and self.drop_rate == 0.0
                and self.duplicate_rate == 0.0
                and self.corrupt_rate == 0.0
                and self.store_failure_rate == 0.0)

    def in_outage(self, minute: int) -> bool:
        return any(minute in w for w in self.outages)

    def poll_fails(self, minute: int, attempt: int) -> bool:
        if attempt >= self.max_consecutive_failures:
            return False
        return self._chance(self.transient_rate, "poll", minute, attempt)

    def api_fails(self, kind: str, key: object, attempt: int) -> bool:
        """Transient failure for an API endpoint call (backfill, report)."""
        if attempt >= self.max_consecutive_failures:
            return False
        return self._chance(self.transient_rate, "api", kind, key, attempt)

    def drops(self, sha256: str, scan_time: int) -> bool:
        return self._chance(self.drop_rate, "drop", sha256, scan_time)

    def duplicates(self, sha256: str, scan_time: int) -> bool:
        return self._chance(self.duplicate_rate, "dup", sha256, scan_time)

    def corrupts(self, sha256: str, scan_time: int) -> bool:
        return self._chance(self.corrupt_rate, "corrupt", sha256, scan_time)

    def store_write_fails(self, sha256: str, scan_time: int,
                          attempt: int) -> bool:
        if attempt >= self.max_consecutive_failures:
            return False
        return self._chance(self.store_failure_rate,
                            "store", sha256, scan_time, attempt)

    def corruption_rng(self, sha256: str, scan_time: int) -> random.Random:
        """The keyed RNG that decides *how* one payload is mangled."""
        return random.Random(f"{self.seed}:mangle:{sha256}:{scan_time}")


def standard_chaos_plan(seed: int = 0) -> FaultPlan:
    """The reference chaos mix used by tests, CI smoke and the benchmark.

    One multi-day feed outage (well inside the archive's 7-day catch-up
    window), a steady trickle of transient poll/API failures, duplicated
    deliveries, corrupted payloads and store write failures.  Silent
    drops are left at zero: they are the one fault class that is
    *undetectable* by construction, so the standard plan keeps exact
    recovery possible.
    """
    return FaultPlan(
        seed=seed,
        outages=(OutageWindow(10 * MINUTES_PER_DAY, 13 * MINUTES_PER_DAY),),
        transient_rate=0.01,
        duplicate_rate=0.05,
        corrupt_rate=0.03,
        store_failure_rate=0.005,
        max_consecutive_failures=2,
    )
