"""``repro.lint`` (reprolint) — static enforcement of the determinism
contract.

Every equivalence gate in this repo — the serial/parallel digest gate,
byte-identical metric exports, chaos crash/resume convergence — rests on
one unwritten rule: *no unseeded randomness, no wall-clock reads, no
order-unstable iteration anywhere on the simulation path*.  reprolint
makes the rule written and machine-checked: an AST pass over the source
with per-rule codes (RPL001-RPL007), inline ``# reprolint:
disable=RPL00x - why`` pragmas with required justifications, a
config-driven path policy for the sanctioned owners (clock modules, the
parallel runner), and byte-deterministic text/JSON reports.

Since v2 the pass is whole-program: a project call graph
(:mod:`repro.lint.callgraph`) feeds the RPL1xx flow rules
(:mod:`repro.lint.flowrules` — lock discipline, resource leaks, digest
purity, exception contract, label cardinality), an incremental
content-hash cache (:mod:`repro.lint.cache`) keeps warm runs to the
changed files' import cone, and a shrink-only baseline
(:mod:`repro.lint.baseline`) lets new rules land with old debt
ratcheted.

The repo lints itself in tier-1 (``tests/test_lint_selfcheck.py``) and
in CI (``repro-vt lint --format json``): zero undisabled findings with
an empty baseline, the same bar the dynamic gates hold the runtime to.
"""

from __future__ import annotations

from repro.lint.baseline import (
    BASELINE_SCHEMA,
    apply_baseline,
    read_baseline,
    write_baseline,
)
from repro.lint.cache import CACHE_SCHEMA, lint_paths_cached
from repro.lint.callgraph import (
    CallGraph,
    FileSummary,
    dependency_cone,
    extract_summary,
)
from repro.lint.config import (
    ALL_CODES,
    DEFAULT_POLICIES,
    FLOW_CODES,
    RULE_SUMMARIES,
    LintConfig,
    PathPolicy,
    normalize_path,
    parse_select,
)
from repro.lint.engine import (
    ENGINE_VERSION,
    FileAnalysis,
    Finding,
    LintResult,
    analyze_module,
    default_target,
    finish_program,
    lint_modules,
    lint_paths,
    lint_source,
)
from repro.lint.flowrules import FLOW_LOCAL_RULES, program_findings
from repro.lint.pragmas import BadPragma, Pragmas, collect_pragmas
from repro.lint.report import (
    JSON_SCHEMA,
    json_lines,
    render_json,
    render_rules,
    render_text,
    write_report,
)
from repro.lint.rules import RULE_CLASSES

__all__ = [
    "ALL_CODES",
    "BASELINE_SCHEMA",
    "CACHE_SCHEMA",
    "DEFAULT_POLICIES",
    "ENGINE_VERSION",
    "FLOW_CODES",
    "FLOW_LOCAL_RULES",
    "JSON_SCHEMA",
    "RULE_CLASSES",
    "RULE_SUMMARIES",
    "CallGraph",
    "FileAnalysis",
    "FileSummary",
    "Finding",
    "LintConfig",
    "LintResult",
    "PathPolicy",
    "analyze_module",
    "apply_baseline",
    "default_target",
    "dependency_cone",
    "extract_summary",
    "finish_program",
    "json_lines",
    "lint_modules",
    "lint_paths",
    "lint_paths_cached",
    "lint_source",
    "normalize_path",
    "parse_select",
    "program_findings",
    "read_baseline",
    "render_json",
    "render_rules",
    "render_text",
    "write_baseline",
    "write_report",
]
