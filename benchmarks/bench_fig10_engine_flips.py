"""Figure 10 / §7.1 / Observation 10: per-engine label flips.

Paper headline numbers over dataset S (109 M reports): 16,838,818 flips —
12,270,147 of them 0→1 and 4,568,671 1→0 (≈2.7:1) — and only **9** hazard
flips, flatly contradicting Zhu et al.'s >50 % hazard share under daily
reschedule; flip ratios vary wildly per engine × file type (Arcabit:
25.78 % on ELF executables vs 0.05 % on DEX), with Arcabit / F-Secure /
Lionic flippy and Jiangmin / AhnLab stable.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.engines import APPENDIX_FILE_TYPES, engine_stability
from repro.analysis.rendering import render_fig10

from conftest import run_once, say


def test_fig10_engine_flips(benchmark, bench_data):
    result = run_once(
        benchmark,
        partial(engine_stability, bench_data.store,
                bench_data.engine_names),
    )
    flips = result.flips
    say()
    say(render_fig10(flips, APPENDIX_FILE_TYPES))

    # Direction: detections arrive more often than they retract.
    assert result.up_down_ratio > 1.3     # paper: ~2.7

    # Hazard flips are a vanishing share of flips (paper: 9 of 16.8 M).
    assert result.hazard_share < 0.02

    # Update co-occurrence (§5.5's check re-run at fleet level).
    assert 0.40 < flips.update_coincidence_rate < 0.85

    # Stable engines vs flippy engines.
    assert flips.flip_ratio("Jiangmin") < flips.flip_ratio("F-Secure")
    assert flips.flip_ratio("AhnLab") < flips.flip_ratio("F-Secure")

    # Arcabit's ELF/DEX contrast, when both cells have data.
    types, matrix = flips.flip_ratio_matrix(["ELF executable", "DEX"])
    arcabit = flips.engine_names.index("Arcabit")
    elf_ratio = matrix[0][arcabit]
    dex_ratio = matrix[1][arcabit]
    import math

    if not math.isnan(elf_ratio) and not math.isnan(dex_ratio):
        assert elf_ratio > dex_ratio
