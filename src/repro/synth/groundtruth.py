"""Latent ground truth for synthetic samples.

Each sample carries a hidden truth the analyses never read directly —
whether it is malicious and, if so, which malware family it belongs to.
Family names feed the AVClass-style baseline labeller
(:mod:`repro.labeling`), which reconstructs them from noisy per-engine
detection strings, and the per-category family pools below use real-world
family names typical of each file-type category.
"""

from __future__ import annotations

import random

from repro.vt.filetypes import FILE_TYPES

#: Malware family pools per file-type category.
FAMILY_POOLS: dict[str, tuple[str, ...]] = {
    "pe": (
        "emotet", "agenttesla", "formbook", "redline", "lokibot",
        "qakbot", "trickbot", "remcos", "njrat", "nanocore",
        "azorult", "raccoon", "smokeloader", "gandcrab", "stop",
        "berbew", "virut", "sality", "upatre", "zbot",
    ),
    "elf": (
        "mirai", "gafgyt", "tsunami", "xorddos", "mozi",
        "hajime", "dofloo", "setag", "coinminer", "kinsing",
    ),
    "android": (
        "hiddad", "joker", "cerberus", "anubis", "triada",
        "hummingbad", "ewind", "dnotua", "smsreg", "necro",
    ),
    "document": (
        "valyria", "donoff", "powload", "sagent", "alien",
        "pdfka", "phish", "urlmal", "exploit_cve", "obfsobj",
    ),
    "web": (
        "faceliker", "redirector", "cryxos", "coinhive", "iframe",
        "scrinject", "phishing", "clickjack", "seoredir", "fakejquery",
    ),
    "script": (
        "powdow", "valyria", "nemucod", "locky_dl", "psdownloader",
        "obfus", "wscript", "autoit", "vbsdropper", "jsminer",
    ),
    "archive": (
        "zipbomb", "nemucod", "dropper", "phishkit", "packedexe",
        "mailarc", "spamzip", "bundlore", "installcore", "archsmuggle",
    ),
    "image": (
        "stegoload", "polyglot", "exifshell", "svgphish", "icoloader",
    ),
    "other": (
        "generic", "miner", "dropper", "packed", "dialer",
        "riskware", "adware", "pua", "heur", "crypt",
    ),
}


def family_for(
    rng: random.Random, file_type: str
) -> str:
    """Draw a malware family appropriate for a file type.

    Family frequency is Zipf-like: the first families of each pool are
    far more common, as in real feeds where a handful of families
    dominate.
    """
    category = FILE_TYPES[file_type].category
    pool = FAMILY_POOLS.get(category, FAMILY_POOLS["other"])
    weights = [1.0 / (rank + 1) for rank in range(len(pool))]
    x = rng.random() * sum(weights)
    acc = 0.0
    for name, w in zip(pool, weights, strict=False):
        acc += w
        if x < acc:
            return name
    return pool[-1]


#: Median file sizes per category (bytes), for Table 2 accounting.
MEDIAN_SIZE_BYTES: dict[str, int] = {
    "pe": 950_000,
    "elf": 420_000,
    "android": 3_800_000,
    "document": 600_000,
    "web": 45_000,
    "script": 18_000,
    "archive": 1_500_000,
    "image": 250_000,
    "other": 120_000,
}
