"""Project-wide import/call-graph construction for the flow rules.

Per-file analysis (:func:`extract_summary`) distils each module into a
:class:`FileSummary`: its import bindings, its functions with their
call/write/impure-reference facts, and its class attribute types.  The
summaries are plain data — JSON-serialisable, content-addressed by the
incremental cache — and deliberately cheap to combine: a
:class:`CallGraph` built from *all* summaries resolves the per-file
call targets into cross-module edges, which is what lets RPL101 (lock
discipline) and RPL103 (digest purity) reason about reachability
instead of single files.

Resolution grows :mod:`repro.lint.resolve` across module boundaries:

* aliased imports and ``from``-imports resolve through each module's
  :class:`~repro.lint.resolve.ImportMap` bindings;
* re-exports follow package ``__init__`` bindings (``from repro.store
  import ReportStore`` reaches ``repro.store.reportstore.ReportStore``);
* ``self.method()`` resolves within the enclosing class, and
  ``self.attr.method()`` through constructor-inferred attribute types
  (``self._index = StoreIndex()`` makes ``self._index.add`` an edge to
  ``StoreIndex.add``);
* ``functools.partial(f, ...)`` and decorators add edges to their
  wrapped callables, so indirection cannot hide a call.

Resolution is intentionally *under*-approximate where Python is dynamic
(no inheritance walk, no duck typing): an unresolved call simply adds no
edge.  The flow rules compensate by rooting at the concrete entry
points named in :mod:`repro.lint.config`.
"""

from __future__ import annotations

import ast
import fnmatch
from collections import deque
from dataclasses import dataclass, field

from repro.lint.resolve import absolutize
from repro.lint.rules import EntropyRule, WallClockRule

#: Impure-reference classification for RPL103: qualname (or ``.*``
#: prefix) → kind.  Clock and entropy tables are shared with
#: RPL001/RPL003 so the taint rule subsumes them transitively.
IMPURE_KINDS: dict[str, str] = {
    **{qual: "clock" for qual in WallClockRule.BANNED},
    **{qual: "entropy" for qual in EntropyRule.BANNED},
    "os.environ": "env",
    "os.environ.*": "env",
    "os.getenv": "env",
    "os.environb": "env",
    "os.getenvb": "env",
}


def module_name_of(path: str) -> tuple[str, bool]:
    """``(dotted module name, is_package)`` for a normalised path.

    ``repro/store/codec.py`` → ``repro.store.codec``;
    ``repro/store/__init__.py`` → ``repro.store`` (a package).
    """
    parts = path.split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        return ".".join(parts[:-1]), True
    return ".".join(parts), False


@dataclass(frozen=True)
class CallFact:
    """One call site: where, the encoded target, and whether the site
    sits lexically inside a ``with <lock>`` block."""

    line: int
    col: int
    target: str
    guarded: bool

    def to_doc(self) -> list:
        return [self.line, self.col, self.target, self.guarded]

    @classmethod
    def from_doc(cls, doc: list) -> "CallFact":
        return cls(doc[0], doc[1], doc[2], doc[3])


@dataclass(frozen=True)
class WriteFact:
    """One ``self.<attr>`` (or ``self.<attr>[k]``) write site."""

    line: int
    col: int
    attr: str
    guarded: bool

    def to_doc(self) -> list:
        return [self.line, self.col, self.attr, self.guarded]

    @classmethod
    def from_doc(cls, doc: list) -> "WriteFact":
        return cls(doc[0], doc[1], doc[2], doc[3])


@dataclass(frozen=True)
class ImpureFact:
    """One reference to a wall-clock/entropy/env API."""

    line: int
    col: int
    qual: str
    kind: str

    def to_doc(self) -> list:
        return [self.line, self.col, self.qual, self.kind]

    @classmethod
    def from_doc(cls, doc: list) -> "ImpureFact":
        return cls(doc[0], doc[1], doc[2], doc[3])


@dataclass
class FunctionFact:
    """Everything the flow rules need to know about one function."""

    qualname: str
    line: int
    col: int
    calls: list[CallFact] = field(default_factory=list)
    writes: list[WriteFact] = field(default_factory=list)
    impure: list[ImpureFact] = field(default_factory=list)

    def to_doc(self) -> dict:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "col": self.col,
            "calls": [c.to_doc() for c in self.calls],
            "writes": [w.to_doc() for w in self.writes],
            "impure": [i.to_doc() for i in self.impure],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "FunctionFact":
        return cls(
            qualname=doc["qualname"], line=doc["line"], col=doc["col"],
            calls=[CallFact.from_doc(d) for d in doc["calls"]],
            writes=[WriteFact.from_doc(d) for d in doc["writes"]],
            impure=[ImpureFact.from_doc(d) for d in doc["impure"]],
        )


@dataclass
class FileSummary:
    """One module's contribution to the program call graph."""

    path: str
    module: str
    is_package: bool
    #: Local name → absolute dotted target (imports plus module-level
    #: constructed constants), relative imports already absolutised.
    bindings: dict[str, str] = field(default_factory=dict)
    #: Imported repro-internal module names (the import-graph edges the
    #: cache's ``--changed`` cone walks).
    deps: list[str] = field(default_factory=list)
    #: Class qualname → {attribute: dotted class target} inferred from
    #: ``self.<attr> = ClassName(...)`` constructor assignments.
    classes: dict[str, dict[str, str]] = field(default_factory=dict)
    functions: list[FunctionFact] = field(default_factory=list)
    #: ``(line, col, name, kind)`` metric instrument sites (the RPL005
    #: whole-program kind table is rebuilt from these every run).
    metric_sites: list[tuple[int, int, str, str]] = field(
        default_factory=list)

    def to_doc(self) -> dict:
        return {
            "path": self.path,
            "module": self.module,
            "is_package": self.is_package,
            "bindings": dict(sorted(self.bindings.items())),
            "deps": sorted(self.deps),
            "classes": {c: dict(sorted(a.items()))
                        for c, a in sorted(self.classes.items())},
            "functions": [f.to_doc() for f in self.functions],
            "metric_sites": [list(s) for s in self.metric_sites],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "FileSummary":
        return cls(
            path=doc["path"], module=doc["module"],
            is_package=doc["is_package"], bindings=dict(doc["bindings"]),
            deps=list(doc["deps"]),
            classes={c: dict(a) for c, a in doc["classes"].items()},
            functions=[FunctionFact.from_doc(d) for d in doc["functions"]],
            metric_sites=[tuple(s) for s in doc["metric_sites"]],
        )


def _rightmost_ident(node: ast.expr) -> str | None:
    """The trailing identifier of an expression (for lock detection)."""
    if isinstance(node, ast.Call):
        return _rightmost_ident(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_lock_expr(node: ast.expr) -> bool:
    ident = _rightmost_ident(node)
    return ident is not None and "lock" in ident.lower()


class _Extractor(ast.NodeVisitor):
    """One pass over a module tree, building its :class:`FileSummary`."""

    def __init__(self, module_info, summary: FileSummary) -> None:
        self._info = module_info
        self._summary = summary
        #: Dotted scope prefix (module, then class/function qualnames).
        self._prefix = summary.module
        #: Qualnames of the enclosing classes, innermost last.
        self._class_quals: list[str] = []
        self._func_stack: list[FunctionFact] = []
        self._lock_depth = 0
        self._toplevel: set[str] = {
            node.name for node in module_info.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef))
        }

    # -- helpers ----------------------------------------------------------

    def _absolute(self, dotted: str) -> str:
        return absolutize(dotted, self._summary.module,
                          self._summary.is_package)

    def _qual(self, node: ast.expr) -> str | None:
        dotted = self._info.imports.qualname(node)
        return self._absolute(dotted) if dotted is not None else None

    def _scope_qual(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def _target_of(self, node: ast.expr) -> str | None:
        """Encode a callable expression as a resolvable target string."""
        qual = self._qual(node)
        if qual is not None:
            return f"dotted:{qual}"
        if isinstance(node, ast.Name):
            if node.id in self._toplevel:
                return f"dotted:{self._summary.module}.{node.id}"
            return None
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                return f"self:{node.attr}"
            if (isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id in ("self", "cls")):
                return f"selfattr:{base.attr}:{node.attr}"
        return None

    def _add_call(self, node: ast.AST, target: str | None) -> None:
        if target is None or not self._func_stack:
            return
        self._func_stack[-1].calls.append(CallFact(
            line=node.lineno, col=node.col_offset, target=target,
            guarded=self._lock_depth > 0))

    # -- scopes -----------------------------------------------------------

    def _visit_function(self, node) -> None:
        qual = self._scope_qual(node.name)
        fact = FunctionFact(qualname=qual,
                            line=node.lineno, col=node.col_offset)
        # Decorators are call edges of the function they wrap: invoking
        # the function runs the decorator's wrapper, so taint flows
        # through `@traced(...)` the same way an explicit call would.
        saved_stack, saved_prefix = self._func_stack, self._prefix
        self._func_stack = [*saved_stack, fact]
        self._prefix = qual
        for dec in node.decorator_list:
            target = self._target_of(
                dec.func if isinstance(dec, ast.Call) else dec)
            self._add_call(dec, target)
            if isinstance(dec, ast.Call):
                for arg in dec.args:
                    self.visit(arg)
        for stmt in node.body:
            self.visit(stmt)
        self._func_stack, self._prefix = saved_stack, saved_prefix
        self._summary.functions.append(fact)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = self._scope_qual(node.name)
        self._summary.classes.setdefault(qual, {})
        saved_stack, saved_prefix = self._func_stack, self._prefix
        self._class_quals.append(qual)
        self._func_stack = []
        self._prefix = qual
        for stmt in node.body:
            self.visit(stmt)
        self._func_stack, self._prefix = saved_stack, saved_prefix
        self._class_quals.pop()

    # -- lock regions ------------------------------------------------------

    def _visit_with(self, node) -> None:
        locked = any(_is_lock_expr(item.context_expr) for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        if locked:
            self._lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if locked:
            self._lock_depth -= 1

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    # -- facts -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        target = self._target_of(node.func)
        self._add_call(node, target)
        # functools.partial(f, ...) defers the call to f; record the
        # edge at the partial site so indirection cannot hide it.
        if target == "dotted:functools.partial" and node.args:
            self._add_call(node, self._target_of(node.args[0]))
        self.generic_visit(node)

    def _record_write(self, target: ast.expr) -> None:
        if not self._func_stack:
            return
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in ("self", "cls")):
            self._func_stack[-1].writes.append(WriteFact(
                line=target.lineno, col=target.col_offset, attr=node.attr,
                guarded=self._lock_depth > 0))
            self._infer_attr_type(target)

    def _infer_attr_type(self, target: ast.expr) -> None:
        """``self.<attr> = ClassName(...)`` types the attribute."""
        assign = getattr(target, "_repro_assign", None)
        if not (isinstance(assign, ast.Assign)
                and isinstance(assign.value, ast.Call)
                and isinstance(target, ast.Attribute)):
            return
        ctor = self._target_of(assign.value.func)
        if ctor is None or not ctor.startswith("dotted:"):
            return
        if not self._class_quals:
            return
        self._summary.classes.setdefault(
            self._class_quals[-1], {})[target.attr] = ctor[len("dotted:"):]

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            target._repro_assign = node
            self._record_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            node.target._repro_assign = ast.Assign(
                targets=[node.target], value=node.value)
            self._record_write(node.target)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        self._match_impure(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self._match_impure(node):
            self.generic_visit(node)

    def _match_impure(self, node: ast.expr) -> bool:
        if not self._func_stack:
            return False
        qual = self._qual(node)
        if qual is None:
            return False
        kind = IMPURE_KINDS.get(qual)
        if kind is None:
            for key, value in IMPURE_KINDS.items():
                if key.endswith(".*") and (
                        qual == key[:-2] or qual.startswith(key[:-2] + ".")):
                    kind = value
                    break
        if kind is None:
            return False
        self._func_stack[-1].impure.append(ImpureFact(
            line=node.lineno, col=node.col_offset, qual=qual, kind=kind))
        return True


def _collect_deps(module_info, summary: FileSummary) -> None:
    """Record which repro-internal modules this file imports."""
    deps: set[str] = set()
    for node in ast.walk(module_info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".", 1)[0] == "repro":
                    deps.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            dotted = ("." * node.level) + (node.module or "")
            base = absolutize(dotted, summary.module, summary.is_package)
            if base.split(".", 1)[0] == "repro":
                deps.add(base)
                for alias in node.names:
                    if alias.name != "*":
                        deps.add(f"{base}.{alias.name}")
    deps.discard(summary.module)
    summary.deps = sorted(deps)


def extract_summary(module_info) -> FileSummary:
    """Distil one parsed module into its call-graph summary."""
    module, is_package = module_name_of(module_info.path)
    summary = FileSummary(path=module_info.path, module=module,
                          is_package=is_package)
    raw = module_info.imports.bindings()
    summary.bindings = {
        local: absolutize(target, module, is_package)
        for local, target in sorted(raw.items())
    }
    _collect_deps(module_info, summary)
    extractor = _Extractor(module_info, summary)
    for stmt in module_info.tree.body:
        extractor.visit(stmt)
    summary.functions.sort(key=lambda f: (f.line, f.col, f.qualname))
    return summary


# ---------------------------------------------------------------------------
# The program graph
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Edge:
    """One resolved call edge."""

    caller: str
    callee: str
    line: int
    col: int
    guarded: bool


class CallGraph:
    """Cross-module call graph resolved from file summaries."""

    def __init__(self, summaries: list[FileSummary]) -> None:
        self.summaries = sorted(summaries, key=lambda s: s.path)
        self.modules: dict[str, FileSummary] = {
            s.module: s for s in self.summaries}
        self.functions: dict[str, FunctionFact] = {}
        self.paths: dict[str, str] = {}
        self.classes: dict[str, dict[str, str]] = {}
        for summary in self.summaries:
            for qual, attrs in summary.classes.items():
                self.classes.setdefault(qual, {}).update(attrs)
            for fact in summary.functions:
                self.functions[fact.qualname] = fact
                self.paths[fact.qualname] = summary.path
        self.edges: dict[str, list[Edge]] = {}
        for summary in self.summaries:
            for fact in summary.functions:
                resolved = []
                for call in fact.calls:
                    callee = self.resolve_target(call.target, fact.qualname)
                    if callee is not None:
                        resolved.append(Edge(
                            caller=fact.qualname, callee=callee,
                            line=call.line, col=call.col,
                            guarded=call.guarded))
                resolved.sort(key=lambda e: (e.line, e.col, e.callee))
                self.edges[fact.qualname] = resolved

    # -- resolution --------------------------------------------------------

    def resolve_dotted(self, dotted: str, _depth: int = 0) -> str | None:
        """Resolve a dotted name to a known function qualname, following
        package re-exports and landing class names on ``__init__``."""
        if _depth > 8:
            return None
        if dotted in self.functions:
            return dotted
        if dotted in self.classes:
            ctor = f"{dotted}.__init__"
            return ctor if ctor in self.functions else None
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            summary = self.modules.get(prefix)
            if summary is None:
                continue
            rest = parts[cut:]
            bound = summary.bindings.get(rest[0])
            if bound is None:
                return None
            tail = ".".join(rest[1:])
            rebased = f"{bound}.{tail}" if tail else bound
            return self.resolve_dotted(rebased, _depth + 1)
        return None

    def _enclosing_class(self, qualname: str) -> str | None:
        parts = qualname.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.classes:
                return prefix
        return None

    def resolve_target(self, target: str, caller: str) -> str | None:
        """Resolve one encoded call target in the caller's context."""
        if target.startswith("dotted:"):
            return self.resolve_dotted(target[len("dotted:"):])
        if target.startswith("self:"):
            owner = self._enclosing_class(caller)
            if owner is None:
                return None
            candidate = f"{owner}.{target[len('self:'):]}"
            return candidate if candidate in self.functions else None
        if target.startswith("selfattr:"):
            _, attr, method = target.split(":", 2)
            owner = self._enclosing_class(caller)
            if owner is None:
                return None
            attr_class = self.classes.get(owner, {}).get(attr)
            if attr_class is None:
                return None
            resolved_class = self._resolve_class(attr_class)
            if resolved_class is None:
                return None
            candidate = f"{resolved_class}.{method}"
            return candidate if candidate in self.functions else None
        return None

    def _resolve_class(self, dotted: str, _depth: int = 0) -> str | None:
        if _depth > 8:
            return None
        if dotted in self.classes:
            return dotted
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            summary = self.modules.get(prefix)
            if summary is None:
                continue
            bound = summary.bindings.get(parts[cut])
            if bound is None:
                return None
            tail = ".".join(parts[cut + 1:])
            rebased = f"{bound}.{tail}" if tail else bound
            return self._resolve_class(rebased, _depth + 1)
        return None

    # -- traversal ---------------------------------------------------------

    def match_roots(self, root_specs) -> list[str]:
        """Function qualnames matching ``(path prefix, name glob)`` or
        exact-qualname root specs, in sorted order."""
        matched: set[str] = set()
        for spec in root_specs:
            if isinstance(spec, str):
                if spec in self.functions:
                    matched.add(spec)
                continue
            prefix, pattern = spec
            for qual in self.functions:
                path = self.paths[qual]
                name = qual.rsplit(".", 1)[-1]
                if path.startswith(prefix) and fnmatch.fnmatch(name, pattern):
                    matched.add(qual)
        return sorted(matched)

    def reachable(self, roots, descend=None):
        """BFS from ``roots``; returns ``{qualname: call chain}`` where
        the chain is the deterministic shortest root path.

        ``descend(qualname) -> bool`` gates traversal *into* a
        function's callees (the taint walk stops at sanctioned-owner
        modules without reporting inside them).
        """
        chains: dict[str, tuple[str, ...]] = {}
        queue: deque[str] = deque()
        for root in sorted(roots):
            if root in self.functions and root not in chains:
                chains[root] = (root,)
                queue.append(root)
        while queue:
            current = queue.popleft()
            if descend is not None and not descend(current):
                continue
            for edge in self.edges.get(current, ()):
                if edge.callee not in chains:
                    chains[edge.callee] = chains[current] + (edge.callee,)
                    queue.append(edge.callee)
        return chains

    def reachable_unguarded(self, roots):
        """BFS from ``roots`` propagating *unguardedness*: an edge made
        inside a ``with <lock>`` block protects its whole subtree, so
        only lock-free paths extend the frontier.  Returns
        ``{qualname: chain}`` for functions reachable entirely outside
        locks."""
        chains: dict[str, tuple[str, ...]] = {}
        queue: deque[str] = deque()
        for root in sorted(roots):
            if root in self.functions and root not in chains:
                chains[root] = (root,)
                queue.append(root)
        while queue:
            current = queue.popleft()
            for edge in self.edges.get(current, ()):
                if edge.guarded or edge.callee in chains:
                    continue
                chains[edge.callee] = chains[current] + (edge.callee,)
                queue.append(edge.callee)
        return chains


def dependency_cone(summaries: list[FileSummary],
                    changed_paths: set[str]) -> set[str]:
    """Paths whose analysis a change can affect: the changed files plus
    every file importing them, transitively (reverse import cone)."""
    by_module: dict[str, str] = {s.module: s.path for s in summaries}
    importers: dict[str, set[str]] = {}
    for summary in summaries:
        for dep in summary.deps:
            # deps may name module members; land on the module itself.
            target = dep
            while target and target not in by_module:
                target = target.rpartition(".")[0]
            if target:
                importers.setdefault(by_module[target], set()).add(
                    summary.path)
    cone = set(changed_paths)
    queue = deque(sorted(changed_paths))
    while queue:
        path = queue.popleft()
        for importer in sorted(importers.get(path, ())):
            if importer not in cone:
                cone.add(importer)
                queue.append(importer)
    return cone
