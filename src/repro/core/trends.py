"""Trajectory-shape taxonomy — a finer lens than stable/dynamic.

The paper's binary stable/dynamic split (§5.1) hides *how* a dynamic
sample moves.  Its mechanisms imply recognisable shapes, which this
module classifies from the AV-Rank series alone:

* ``FLAT``      — no movement (the paper's stable class);
* ``GROWER``    — monotone-ish upward drift (engine latency: detections
  arriving after first submission);
* ``DECLINER``  — monotone-ish downward drift (false-positive
  retractions);
* ``SPIKE``     — an excursion that returns near its start (FP episodes
  captured whole, flapping engines);
* ``CHURN``     — movement without direction (timeout noise around a
  plateau).

The classifier is intentionally simple — net displacement vs gross
movement — so its decisions are explainable and testable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

from repro.core.avrank import AVRankSeries
from repro.errors import ConfigError


class Trend(Enum):
    """Trajectory shape classes."""

    FLAT = "flat"
    GROWER = "grower"
    DECLINER = "decliner"
    SPIKE = "spike"
    CHURN = "churn"


@dataclass(frozen=True)
class TrendParams:
    """Classifier thresholds.

    ``direction_share``: fraction of gross movement that must be net
    displacement to call a direction.  ``spike_return``: how close (in
    ranks) the series must return to its start, relative to its peak
    excursion, to be a spike.
    """

    direction_share: float = 0.6
    spike_return: float = 0.34
    min_movement: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.direction_share <= 1.0:
            raise ConfigError("direction_share must be in (0,1]")
        if not 0.0 <= self.spike_return < 1.0:
            raise ConfigError("spike_return must be in [0,1)")


#: Shared default thresholds (frozen, so safely reusable as a default).
DEFAULT_TREND_PARAMS = TrendParams()


def classify_trend(
    series: AVRankSeries, params: TrendParams = DEFAULT_TREND_PARAMS
) -> Trend:
    """Classify one sample's trajectory shape."""
    ranks = series.ranks
    gross = sum(abs(b - a) for a, b in zip(ranks, ranks[1:], strict=False))
    if gross < params.min_movement:
        return Trend.FLAT
    net = ranks[-1] - ranks[0]
    # Peak excursion from the starting rank, in either direction, and
    # the number of times the trajectory changes direction — a spike is
    # one out-and-back excursion, churn keeps reversing.
    excursion = max(abs(r - ranks[0]) for r in ranks)
    moves = [b - a for a, b in zip(ranks, ranks[1:], strict=False) if b != a]
    reversals = sum(1 for a, b in zip(moves, moves[1:], strict=False)
                    if (a > 0) != (b > 0))
    if (excursion and abs(net) <= params.spike_return * excursion
            and reversals <= 1):
        return Trend.SPIKE
    if abs(net) >= params.direction_share * gross:
        return Trend.GROWER if net > 0 else Trend.DECLINER
    return Trend.CHURN


def trend_distribution(
    series: Iterable[AVRankSeries],
    params: TrendParams = DEFAULT_TREND_PARAMS,
) -> Counter:
    """Trend class counts over a collection (multi-report samples only)."""
    counts: Counter = Counter()
    for s in series:
        if s.multi:
            counts[classify_trend(s, params)] += 1
    return counts


def trends_by_file_type(
    series: Iterable[AVRankSeries],
    params: TrendParams = DEFAULT_TREND_PARAMS,
) -> dict[str, Counter]:
    """Per-file-type trend distributions."""
    out: dict[str, Counter] = {}
    for s in series:
        if not s.multi:
            continue
        out.setdefault(s.file_type, Counter())[
            classify_trend(s, params)
        ] += 1
    return out


def dominant_dynamic_trend(counts: Counter) -> Trend | None:
    """The most common non-flat trend, or None if everything is flat."""
    dynamic = [(trend, n) for trend, n in counts.items()
               if trend is not Trend.FLAT]
    if not dynamic:
        return None
    return max(dynamic, key=lambda item: item[1])[0]


def summarize_trends(
    series: Sequence[AVRankSeries],
    params: TrendParams = DEFAULT_TREND_PARAMS,
) -> dict[str, float]:
    """Trend shares over multi-report samples, as fractions."""
    counts = trend_distribution(series, params)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {trend.value: counts.get(trend, 0) / total for trend in Trend}
