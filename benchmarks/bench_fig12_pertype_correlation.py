"""Figure 12 + Tables 4-8 / §7.2.2: per-file-type engine correlation.

Paper: correlation structure varies by type — Cyren-Fortinet are strong
on Win32 EXE despite not correlating overall; Avira-Cynet are strong
overall but *not* on Win32 EXE; Lionic-VirIT correlate only on GZIP; and
Tables 4-8 list the groups for Win32 EXE, TXT, HTML, ZIP and PDF (the
Avast/AVG pair and the BitDefender OEM family recur in every table).
"""

from __future__ import annotations

from functools import partial

from repro.analysis.engines import APPENDIX_FILE_TYPES, engine_correlation
from repro.analysis.rendering import render_group_tables

from conftest import run_once, say


def test_fig12_per_type_correlation(benchmark, bench_data):
    result = run_once(
        benchmark,
        partial(engine_correlation, bench_data.store,
                bench_data.engine_names, APPENDIX_FILE_TYPES),
    )
    say()
    say(render_group_tables(result.per_type))

    exe = result.per_type.get("Win32 EXE")
    assert exe is not None, "Win32 EXE must have enough scans"

    # Cyren copies Fortinet on PE only: strong here...
    assert exe.rho_of("Cyren", "Fortinet") > 0.8
    # ...while Avira-Cynet, strong overall, decouples on Win32 EXE.
    assert exe.rho_of("Avira", "Cynet") < result.overall.rho_of(
        "Avira", "Cynet"
    )

    # Recurring groups across the appendix tables.
    for ftype in ("Win32 EXE", "TXT"):
        analysis = result.per_type.get(ftype)
        if analysis is None:
            continue
        flattened = {n for g in analysis.groups() for n in g}
        assert ("Avast" in flattened) or ("BitDefender" in flattened), ftype

    # Avast-AVG holds per type as well.
    for ftype, analysis in result.per_type.items():
        if analysis.n_scans > 2000:
            assert analysis.rho_of("Avast", "AVG") > 0.7, ftype
