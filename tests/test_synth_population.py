"""Unit tests for population generation (repro.synth.population)."""

import pytest

from repro.errors import ConfigError
from repro.synth.population import PopulationGenerator
from repro.synth.scenario import ScenarioConfig, dynamics_scenario
from repro.vt.clock import WINDOW_MINUTES
from repro.vt.filetypes import TOP20_FILE_TYPES


@pytest.fixture(scope="module")
def paper_specs():
    config = ScenarioConfig(seed=21, n_samples=3000)
    return list(PopulationGenerator(config))


@pytest.fixture(scope="module")
def s_specs():
    return list(PopulationGenerator(dynamics_scenario(2000, seed=22)))


class TestDeterminism:
    def test_spec_for_is_stable(self):
        gen = PopulationGenerator(ScenarioConfig(seed=1, n_samples=10))
        a = gen.spec_for(3)
        b = gen.spec_for(3)
        assert a.sample.sha256 == b.sample.sha256
        assert a.scan_times == b.scan_times

    def test_independent_of_other_samples(self):
        small = PopulationGenerator(ScenarioConfig(seed=1, n_samples=5))
        large = PopulationGenerator(ScenarioConfig(seed=1, n_samples=5000))
        assert small.spec_for(2).sample == large.spec_for(2).sample

    def test_seeds_differ(self):
        a = PopulationGenerator(ScenarioConfig(seed=1, n_samples=5))
        b = PopulationGenerator(ScenarioConfig(seed=2, n_samples=5))
        assert a.spec_for(0).sample.sha256 != b.spec_for(0).sample.sha256

    def test_unique_hashes(self, paper_specs):
        hashes = [s.sample.sha256 for s in paper_specs]
        assert len(set(hashes)) == len(hashes)


class TestPaperMarginals:
    def test_single_report_majority(self, paper_specs):
        singles = sum(1 for s in paper_specs if s.n_reports == 1)
        assert singles / len(paper_specs) == pytest.approx(0.85, abs=0.05)

    def test_fresh_fraction(self, paper_specs):
        fresh = sum(1 for s in paper_specs if s.sample.fresh)
        assert fresh / len(paper_specs) == pytest.approx(0.9176, abs=0.03)

    def test_win32_exe_is_most_common(self, paper_specs):
        from collections import Counter

        counts = Counter(s.sample.file_type for s in paper_specs)
        assert counts.most_common(1)[0][0] == "Win32 EXE"

    def test_malicious_samples_have_families(self, paper_specs):
        for spec in paper_specs:
            if spec.sample.malicious:
                assert spec.sample.family
            else:
                assert spec.sample.family is None

    def test_scan_times_strictly_increasing(self, paper_specs):
        for spec in paper_specs:
            times = spec.scan_times
            assert all(b > a for a, b in zip(times, times[1:], strict=False))

    def test_scan_times_inside_window(self, paper_specs):
        for spec in paper_specs:
            assert spec.scan_times[0] >= 0
            assert spec.scan_times[-1] < WINDOW_MINUTES

    def test_fresh_first_scan_is_submission(self, paper_specs):
        for spec in paper_specs:
            if spec.sample.fresh:
                assert spec.scan_times[0] == spec.sample.first_seen


class TestDatasetSMode:
    def test_all_multi_report(self, s_specs):
        assert all(s.n_reports >= 2 for s in s_specs)

    def test_all_fresh(self, s_specs):
        assert all(s.sample.fresh for s in s_specs)

    def test_top20_types_only(self, s_specs):
        allowed = set(TOP20_FILE_TYPES)
        assert all(s.sample.file_type in allowed for s in s_specs)

    def test_malice_skew_from_rescan_boost(self, s_specs, paper_specs):
        """The multi-report population is malware-skewed (§5.3 context)."""
        s_rate = (sum(s.sample.malicious for s in s_specs) / len(s_specs))
        paper_rate = (sum(s.sample.malicious for s in paper_specs)
                      / len(paper_specs))
        assert s_rate > paper_rate + 0.1


class TestValidation:
    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(n_samples=0)
        with pytest.raises(ConfigError):
            ScenarioConfig(min_reports=0)
        with pytest.raises(ConfigError):
            ScenarioConfig(file_types=("NotAType",))
        with pytest.raises(ConfigError):
            ScenarioConfig(fresh_fraction=1.2)

    def test_with_override(self):
        config = ScenarioConfig(seed=1).with_(n_samples=5)
        assert config.n_samples == 5
        assert config.seed == 1

    def test_len(self):
        assert len(PopulationGenerator(ScenarioConfig(n_samples=7))) == 7
