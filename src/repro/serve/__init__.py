"""The HTTP serving layer: the store substrate as an online service.

The paper's measurement subject is an online anti-malware API with API
keys, tiered quotas and a premium feed; this subpackage closes the loop
by serving a frozen :class:`~repro.store.ReportStore` through exactly
that interface.  :mod:`repro.serve.auth` holds tenants and the
free/premium tier table, :mod:`repro.serve.ratelimit` enforces the dual
per-minute/per-day token buckets, and :mod:`repro.serve.http` routes the
three endpoints over a stdlib threaded HTTP server.  Start one from the
CLI with ``repro-vt serve``.
"""

from repro.serve.auth import (
    FREE_TIER,
    PREMIUM_TIER,
    TIERS,
    Tenant,
    TenantRegistry,
    TierLimits,
)
from repro.serve.http import API_KEY_HEADER, ReportServer, report_doc, series_doc
from repro.serve.ratelimit import (
    RateDecision,
    TenantLimiter,
    TokenBucket,
    real_clock,
)

__all__ = [
    "API_KEY_HEADER",
    "FREE_TIER",
    "PREMIUM_TIER",
    "TIERS",
    "RateDecision",
    "ReportServer",
    "Tenant",
    "TenantLimiter",
    "TenantRegistry",
    "TierLimits",
    "TokenBucket",
    "real_clock",
    "report_doc",
    "series_doc",
]
