"""End-to-end experiment runner.

Reproduces the paper's data pipeline at scenario scale:

1. generate the sample population and its scan schedule
   (:mod:`repro.synth`);
2. replay every submission/rescan against the VirusTotal simulator in
   global time order (:mod:`repro.vt`);
3. consume the premium feed minute by minute into the report store
   (:mod:`repro.store`), exactly as the authors' collection loop did;
4. expose the store plus cached analysis views (AV-Rank series, dataset
   *S*) to the figure/table pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.core.avrank import AVRankSeries, collect_series, select_dataset_s
from repro.store.reportstore import ReportStore
from repro.synth.population import PopulationGenerator
from repro.synth.scenario import ScenarioConfig
from repro.vt.engines import EngineFleet, default_fleet
from repro.vt.feed import PremiumFeed
from repro.vt.filetypes import TOP20_FILE_TYPES
from repro.vt.service import VirusTotalService

#: Drain the feed into the store every this many scan events.
_FEED_DRAIN_EVERY = 10_000


@dataclass
class ExperimentData:
    """Everything an analysis pipeline needs from one scenario run."""

    config: ScenarioConfig
    fleet: EngineFleet
    service: VirusTotalService
    store: ReportStore
    events_executed: int = 0
    _series: list[AVRankSeries] | None = field(default=None, repr=False)

    @property
    def engine_names(self) -> tuple[str, ...]:
        return self.fleet.names

    def series(self) -> list[AVRankSeries]:
        """AV-Rank series for every sample (cached).

        Built from the store's streaming block-order pass, so the full
        report set is never resident at once — only the compact series.
        """
        if self._series is None:
            self._series = collect_series(self.store.iter_sample_reports())
        return self._series

    def store_cache_stats(self):
        """Retrieval-layer counters accumulated by the analyses so far."""
        return self.store.cache_stats()

    @cached_property
    def dataset_s(self) -> list[AVRankSeries]:
        """The paper's dataset *S*: fresh, top-20 types, multi-report."""
        return select_dataset_s(self.series(), frozenset(TOP20_FILE_TYPES))

    @cached_property
    def multi_report(self) -> list[AVRankSeries]:
        """All series with more than one report (§5.1's 63 M analogue)."""
        return [s for s in self.series() if s.multi]


def run_experiment(
    config: ScenarioConfig, fleet: EngineFleet | None = None
) -> ExperimentData:
    """Generate, scan and store one scenario; returns the loaded data.

    ``fleet`` overrides the default engine fleet — used by ablations
    (e.g. a fleet with copy rules stripped).
    """
    if fleet is None:
        fleet = default_fleet(config.seed)
    service = VirusTotalService(fleet=fleet, params=config.behavior,
                                seed=config.seed)
    store_kwargs = {"block_records": config.block_records}
    if config.store_cache_bytes is not None:
        store_kwargs["cache_bytes"] = config.store_cache_bytes
    store = ReportStore(**store_kwargs)
    feed = PremiumFeed(service)

    # Generate the population and flatten its scans into global events.
    generator = PopulationGenerator(config)
    specs = list(generator)
    events: list[tuple[int, int, int]] = []
    for sample_idx, spec in enumerate(specs):
        sample = spec.sample
        if not sample.fresh:
            # Pre-window files already exist on the service.
            sample.times_submitted = 1
            sample.last_submission_date = sample.first_seen
        service.register(sample)
        for ordinal, when in enumerate(spec.scan_times):
            events.append((when, sample_idx, ordinal))
    events.sort()

    executed = 0
    with feed:
        for when, sample_idx, ordinal in events:
            sample = specs[sample_idx].sample
            if ordinal == 0 and sample.fresh:
                service.upload(sample, when)
            else:
                service.rescan(sample.sha256, when)
            executed += 1
            if executed % _FEED_DRAIN_EVERY == 0:
                store.ingest_batch(feed.poll())
        store.ingest_batch(feed.poll())
    store.close()

    return ExperimentData(
        config=config,
        fleet=fleet,
        service=service,
        store=store,
        events_executed=executed,
    )
