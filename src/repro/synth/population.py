"""Sample population generation.

:class:`PopulationGenerator` turns a :class:`~repro.synth.scenario.ScenarioConfig`
into a stream of :class:`SampleSpec` records — a sample plus its scan
schedule — calibrated to the paper's published marginals:

* file types drawn by Table 3's sample shares (restricted to the
  configured subset when generating dataset *S*);
* report counts from Figure 1's mixture (88.81 % single-report), with
  per-type rescan boosts shaping Table 3's report column and a malicious
  boost skewing the multi-report population toward malware;
* first submissions spread over the 14 months by the paper's monthly
  volumes, with 91.76 % of samples fresh.

Generation is streaming and deterministic: sample ``i`` of a scenario is
identical no matter how many other samples are generated around it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

from repro.synth import distributions, groundtruth, submissions
from repro.synth.scenario import ScenarioConfig
from repro.vt.clock import WINDOW_MINUTES
from repro.vt.filetypes import FILE_TYPES
from repro.vt.samples import Sample, sha256_of


@dataclass(frozen=True)
class SampleSpec:
    """A generated sample together with its scan schedule."""

    sample: Sample
    scan_times: tuple[int, ...]

    @property
    def n_reports(self) -> int:
        return len(self.scan_times)


class PopulationGenerator:
    """Deterministic sample-population stream for one scenario."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        names = (config.file_types if config.file_types is not None
                 else tuple(FILE_TYPES))
        weights = [FILE_TYPES[n].sample_share for n in names]
        self._type_choice = distributions.WeightedChoice(names, weights)
        # Per-type and per-truth boosts multiply the rescan probability;
        # normalising by the population-average boost keeps the *marginal*
        # multi-report share at base_multi_prob (Figure 1's 11.19 %).
        total_weight = sum(weights)
        self._mean_boost = sum(
            w * FILE_TYPES[n].rescan_boost * (
                FILE_TYPES[n].malicious_prob * config.malicious_rescan_boost
                + (1.0 - FILE_TYPES[n].malicious_prob)
            )
            for n, w in zip(names, weights, strict=False)
        ) / total_weight

    def _rng_for(self, index: int) -> random.Random:
        return random.Random(f"{self.config.seed}:pop:{index}")

    def sha_for(self, index: int) -> str:
        """The hash sample ``index`` will carry, without generating it.

        Pure function of ``(seed, index)`` — the parallel runner uses it
        to map shard-local report streams back to global sample identity
        without re-running generation.
        """
        return sha256_of(f"{self.config.seed}:{index}")

    def spec_for(self, index: int) -> SampleSpec:
        """Generate sample ``index`` of the scenario."""
        config = self.config
        rng = self._rng_for(index)
        file_type = self._type_choice.sample(rng)
        profile = FILE_TYPES[file_type]

        malicious_prob = profile.malicious_prob
        if config.min_reports >= 2:
            # Generating the multi-report population directly: malicious
            # samples are rescanned more, so condition the malice rate on
            # "was rescanned" via Bayes with the rescan boost.
            boost = config.malicious_rescan_boost
            malicious_prob = (malicious_prob * boost /
                              (malicious_prob * boost + (1 - malicious_prob)))
        malicious = rng.random() < malicious_prob
        fresh = config.fresh_only or rng.random() < config.fresh_fraction

        # Report count: Figure 1 mixture with per-type and per-truth boost.
        if config.forced_report_count is not None:
            n_reports = config.forced_report_count
        elif config.min_reports >= 2:
            n_reports = distributions.multi_report_count(
                rng, tail_boost=math.sqrt(profile.rescan_boost)
            )
        else:
            multi_prob = (config.base_multi_prob * profile.rescan_boost
                          / self._mean_boost)
            if malicious:
                multi_prob *= config.malicious_rescan_boost
            n_reports = distributions.report_count(
                rng,
                multi_prob=min(0.95, multi_prob),
                tail_boost=math.sqrt(profile.rescan_boost),
            )
        n_reports = max(n_reports, config.min_reports)

        first_seen = submissions.draw_first_seen(rng, fresh)
        if fresh:
            # Leave room for the full schedule inside the window.
            first_seen = min(first_seen, WINDOW_MINUTES - n_reports - 1)
        scan_times = submissions.schedule_scans(
            rng, config, first_seen, n_reports, malicious
        )

        sample = Sample(
            sha256=self.sha_for(index),
            file_type=file_type,
            malicious=malicious,
            first_seen=first_seen,
            size_bytes=distributions.lognormal_bytes(
                rng, groundtruth.MEDIAN_SIZE_BYTES[profile.category]
            ),
            family=(groundtruth.family_for(rng, file_type)
                    if malicious else None),
        )
        return SampleSpec(sample=sample, scan_times=tuple(scan_times))

    def __iter__(self) -> Iterator[SampleSpec]:
        for index in range(self.config.n_samples):
            yield self.spec_for(index)

    def iter_range(self, start: int, stop: int) -> Iterator[tuple[int, SampleSpec]]:
        """``(global_index, spec)`` for a contiguous slice of the scenario.

        Because every sample's randomness is keyed by its global index,
        the slice is identical to the same positions of a full iteration —
        the property that lets shard workers generate disjoint ranges
        independently and still reproduce the serial population exactly.
        """
        if not 0 <= start <= stop <= self.config.n_samples:
            raise IndexError(
                f"range [{start}, {stop}) outside population "
                f"[0, {self.config.n_samples})"
            )
        for index in range(start, stop):
            yield index, self.spec_for(index)

    def __len__(self) -> int:
        return self.config.n_samples
