#!/usr/bin/env python3
"""Streaming stability notifications — the paper's §8 feature proposal.

The discussion section suggests VirusTotal notify users when a sample's
AV-Rank has stabilised (with user-settable criteria), and warn on large
short-interval variations.  This example wires a
:class:`~repro.core.monitor.StabilityMonitor` per sample onto the live
premium feed and prints both notification streams as the simulation runs.

Run:  python examples/stabilization_monitor.py
"""

from repro import StabilityCriteria, StabilityMonitor
from repro.analysis.experiment import run_experiment
from repro.synth.scenario import dynamics_scenario
from repro.vt.clock import MINUTES_PER_DAY

# A user who calls a sample stable once its AV-Rank has moved by at most
# 2 across at least 3 scans spanning at least 10 days, and who wants an
# alert when the rank jumps by 5+ within 3 days.
criteria = StabilityCriteria(
    fluctuation=2,
    min_reports=3,
    min_days=10.0,
    alert_jump=5,
    alert_within_days=3.0,
)

stable_events: list[str] = []
variation_events: list[str] = []
monitors: dict[str, StabilityMonitor] = {}


def on_stable(sha256: str, scan_time: int) -> None:
    stable_events.append(
        f"day {scan_time / MINUTES_PER_DAY:7.1f}: {sha256[:12]}… stabilised"
    )


def on_variation(sha256: str, scan_time: int, jump: int) -> None:
    variation_events.append(
        f"day {scan_time / MINUTES_PER_DAY:7.1f}: {sha256[:12]}… "
        f"jumped by {jump}"
    )


# Run the simulation; every report is routed to its sample's monitor.
# (run_experiment drives the feed internally; we observe via the store.)
data = run_experiment(dynamics_scenario(n_samples=1_500, seed=23))
for sha256, reports in data.store.iter_sample_reports():
    monitor = monitors.setdefault(
        sha256,
        StabilityMonitor(criteria=criteria, on_stable=on_stable,
                         on_variation=on_variation),
    )
    for report in reports:
        monitor.observe(report)

stable_count = sum(1 for m in monitors.values() if m.stable)
print(f"monitored {len(monitors):,} samples")
print(f"  currently stable under the criteria: {stable_count:,} "
      f"({stable_count / len(monitors):.1%})")
print(f"  stability notifications fired      : {len(stable_events):,}")
print(f"  short-interval variation alerts    : {len(variation_events):,}")

print("\nfirst stability notifications:")
for line in stable_events[:5]:
    print(f"  {line}")

print("\nfirst variation alerts:")
for line in variation_events[:5]:
    print(f"  {line}")

# The paper's 30-day guidance: most samples that stabilise do so within
# a month of first submission — check it against the monitor's verdicts.
within_30 = sum(
    1 for m in monitors.values()
    if m.stable and m.stable_since is not None
    and m.stable_since <= 30 * MINUTES_PER_DAY
)
if stable_count:
    print(f"\nstable windows beginning within 30 days of the window "
          f"start: {within_30 / stable_count:.1%}")
