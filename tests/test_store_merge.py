"""Frozen-shard merge: block splicing, interleave, validation.

Built on hand-made frozen shards so the block-splice fast path and the
record-level interleave can each be forced deliberately — the end-to-end
equivalence gate lives in ``test_parallel.py``.
"""

from __future__ import annotations

import pytest

from conftest import make_report, make_sha
from repro.errors import ConfigError
from repro.store import codec
from repro.store.merge import FrozenMonth, FrozenShard, concat_frozen
from repro.store.reportstore import ReportStore
from repro.store.shard import CompressedBlock
from repro.vt.clock import month_index

BLOCK = 4  # tiny block size so a handful of reports spans several blocks


def _reports(indices, scan_time_of):
    """One single-scan report per index, keyed ``(scan_time, index)``."""
    out = []
    for i in indices:
        t = scan_time_of(i)
        out.append(((t, i), make_report(sha=make_sha(f"s{i}"),
                                        scan_time=t, first_submission=0)))
    return out


def _freeze(keyed_reports, block_records=BLOCK,
            block_format=codec.BLOCK_FORMAT_COLUMNAR) -> FrozenShard:
    """Package ``(key, report)`` pairs the way a worker would."""
    by_month: dict[int, list] = {}
    for key, report in keyed_reports:
        by_month.setdefault(month_index(report.scan_time), []).append(
            (key, report))
    months = {}
    for month, items in by_month.items():
        records = [codec.encode_report(r) for _, r in items]
        months[month] = FrozenMonth(
            blocks=[CompressedBlock.from_records(records[i:i + block_records],
                                                 block_format)
                    for i in range(0, len(records), block_records)],
            report_count=len(records),
            verbose_bytes=sum(codec.verbose_json_size(r) for _, r in items),
            encoded_bytes=sum(len(rec) for rec in records),
            keys=[k for k, _ in items],
            shas=[r.sha256 for _, r in items],
            scan_times=[r.scan_time for _, r in items],
        )
    meta = {}
    for _, r in keyed_reports:
        meta.setdefault(r.sha256, (r.file_type, r.first_submission_date >= 0))
    return FrozenShard(months=months, sample_meta=meta)


def _serial_reference(all_keyed, block_records=BLOCK,
                      block_format=codec.BLOCK_FORMAT_COLUMNAR) -> ReportStore:
    """What serial ingest of the same records in key order produces."""
    store = ReportStore(block_records=block_records,
                        block_format=block_format)
    for _, report in sorted(all_keyed, key=lambda kr: kr[0]):
        store.ingest(report)
    store.close()
    return store


def test_interleaved_merge_matches_serial_ingest(store_block_format):
    fmt = store_block_format
    a = _reports(range(0, 10, 2), lambda i: 1000 + i)   # even minutes
    b = _reports(range(1, 10, 2), lambda i: 1000 + i)   # odd minutes
    merged, stats = concat_frozen(
        [_freeze(a, block_format=fmt), _freeze(b, block_format=fmt)],
        block_records=BLOCK, block_format=fmt)
    reference = _serial_reference(a + b, block_format=fmt)
    assert merged.digest() == reference.digest()
    assert merged.report_count == 10
    assert stats.records == 10
    # Fully interleaved: nothing can splice, every block decompresses.
    assert stats.blocks_spliced == 0
    assert stats.blocks_decompressed == len(_freeze(a).months[0].blocks) + \
        len(_freeze(b).months[0].blocks)


def test_disjoint_full_blocks_splice_without_decompression(
        store_block_format):
    fmt = store_block_format
    a = _reports(range(0, 8), lambda i: 1000 + i)       # 2 full blocks
    b = _reports(range(8, 16), lambda i: 2000 + i)      # strictly later
    merged, stats = concat_frozen(
        [_freeze(a, block_format=fmt), _freeze(b, block_format=fmt)],
        block_records=BLOCK, block_format=fmt)
    reference = _serial_reference(a + b, block_format=fmt)
    assert merged.digest() == reference.digest()
    # Spliced blocks are adopted untouched, so the merged file equals
    # the serial reference byte for byte in either layout.
    assert stats.blocks_spliced == 4
    assert stats.blocks_decompressed == 0
    assert stats.blocks_recompressed == 0
    assert [b.payload for s in merged.shards.values() for b in s.blocks] == \
        [b.payload for s in reference.shards.values() for b in s.blocks]


def test_partial_tail_block_interleaves(store_block_format):
    fmt = store_block_format
    a = _reports(range(0, 6), lambda i: 1000 + i)       # 1 full + 1 partial
    b = _reports(range(6, 12), lambda i: 2000 + i)
    merged, stats = concat_frozen(
        [_freeze(a, block_format=fmt), _freeze(b, block_format=fmt)],
        block_records=BLOCK, block_format=fmt)
    assert merged.digest() == \
        _serial_reference(a + b, block_format=fmt).digest()
    # a's full first block splices; its 2-record tail forces the buffer
    # open, so b's records re-block from there.
    assert stats.blocks_spliced == 1
    assert stats.blocks_decompressed >= 1
    assert stats.blocks_recompressed >= 1


def test_merged_store_is_sealed_and_indexed():
    a = _reports(range(0, 5), lambda i: 1000 + i)
    b = _reports(range(5, 9), lambda i: 1500 + i)
    merged, _ = concat_frozen([_freeze(a), _freeze(b)],
                              block_records=BLOCK)
    assert merged.closed
    assert merged.sample_count == 9
    for _key, report in a + b:
        assert report.sha256 in merged
        got = merged.reports_for(report.sha256)
        assert [r.scan_time for r in got] == [report.scan_time]
        assert merged.sample_file_type(report.sha256) == report.file_type
        assert merged.has_report(report.sha256, report.scan_time)


def test_multi_month_merge_keeps_months_separate():
    from repro.vt.clock import MONTH_STARTS

    month_minutes = MONTH_STARTS[1]
    a = _reports(range(0, 4), lambda i: 100 + i)
    b = _reports(range(4, 8), lambda i: month_minutes + 100 + i)
    merged, stats = concat_frozen([_freeze(a), _freeze(b)],
                                  block_records=BLOCK)
    assert stats.months == 2
    assert sorted(merged.shards) == [month_index(100),
                                     month_index(month_minutes + 100)]
    assert merged.digest() == _serial_reference(a + b).digest()


def test_empty_sources_merge_to_empty_store():
    merged, stats = concat_frozen([], block_records=BLOCK)
    assert merged.report_count == 0
    assert stats.records == 0
    assert merged.closed


def test_frozen_month_rejects_mismatched_metadata():
    keyed = _reports(range(3), lambda i: 1000 + i)
    records = [codec.encode_report(r) for _, r in keyed]
    with pytest.raises(ConfigError):
        FrozenMonth(
            blocks=[CompressedBlock.from_records(records)],
            report_count=3,
            verbose_bytes=0,
            encoded_bytes=0,
            keys=[k for k, _ in keyed],
            shas=[r.sha256 for _, r in keyed[:2]],  # one sha short
            scan_times=[r.scan_time for _, r in keyed],
        )


def test_merge_accounting_matches_serial():
    a = _reports(range(0, 7), lambda i: 1000 + 3 * i)
    b = _reports(range(7, 13), lambda i: 1001 + 3 * i)
    merged, _ = concat_frozen([_freeze(a), _freeze(b)],
                              block_records=BLOCK)
    reference = _serial_reference(a + b)
    month = month_index(1000)
    assert merged.shards[month].verbose_bytes == \
        reference.shards[month].verbose_bytes
    assert merged.shards[month].encoded_bytes == \
        reference.shards[month].encoded_bytes
    assert merged.stats().total_reports == reference.stats().total_reports
