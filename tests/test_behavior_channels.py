"""Targeted tests for behaviour channels: flapping, hybrid delivery,
context caches."""

import random

import pytest

from repro.vt import clock
from repro.vt.behavior import (
    BehaviorContext,
    BehaviorParams,
    build_plan,
)
from repro.vt.samples import Sample, sha256_of


_DAY40 = clock.minutes(days=40)


def _sample(token, file_type="Win32 EXE",
            first_seen=_DAY40):
    return Sample(sha256=sha256_of(token), file_type=file_type,
                  malicious=True, first_seen=first_seen)


class TestFlapping:
    def test_flapping_engine_oscillates(self, fleet):
        params = BehaviorParams(flap_rate=1.0)
        ctx = BehaviorContext(fleet, params, seed=2)
        plan = build_plan(_sample("flappy"), ctx)
        oscillating = [
            timeline for timeline in plan.transitions.values()
            if len(timeline) >= 5
        ]
        assert oscillating, "flap_rate=1.0 must create an oscillator"
        timeline = max(oscillating, key=len)
        labels = [lab for _, lab in timeline]
        # Alternating 1,0,1,0,... after the onset.
        assert labels[0] == 1
        for a, b in zip(labels, labels[1:], strict=False):
            assert a != b

    def test_flap_dips_are_day_scale(self, fleet):
        params = BehaviorParams(flap_rate=1.0)
        ctx = BehaviorContext(fleet, params, seed=3)
        plan = build_plan(_sample("flappy2"), ctx)
        timeline = max(plan.transitions.values(), key=len)
        times = [t for t, _ in timeline]
        dips = [(times[i + 1] - times[i]) / clock.MINUTES_PER_DAY
                for i in range(1, len(times) - 1, 2)]
        assert dips
        assert all(0.3 <= d <= 3.0 for d in dips)

    def test_default_flap_rate_is_rare(self, fleet):
        ctx = BehaviorContext(fleet, BehaviorParams(), seed=4)
        flappers = 0
        for i in range(300):
            plan = build_plan(_sample(f"d{i}"), ctx)
            if any(len(t) >= 5 for t in plan.transitions.values()):
                flappers += 1
        assert flappers < 15  # ~1.2% of malicious samples


class TestHybridDelivery:
    def _onset_on_update_fraction(self, fleet, hybrid_frac):
        params = BehaviorParams(hybrid_cloud_frac=hybrid_frac)
        ctx = BehaviorContext(fleet, params, seed=5)
        on_update = 0
        total = 0
        for i in range(150):
            sample = _sample(f"h{i}")
            plan = build_plan(sample, ctx)
            for idx, timeline in plan.transitions.items():
                if fleet.engines[idx].cloud:
                    continue
                if idx in plan.copied:
                    # Copied timelines follow the *leader's* delivery
                    # channel, not this engine's schedule.
                    continue
                onset = timeline[0][0]
                if onset <= sample.first_seen:
                    continue
                schedule = fleet.update_schedule(fleet.names[idx])
                if onset > schedule[-1]:
                    # Beyond the schedule horizon delivery is immediate
                    # by design; not informative for alignment.
                    continue
                total += 1
                if onset in schedule:
                    on_update += 1
        return (on_update / total) if total else 0.0

    def test_zero_hybrid_aligns_every_onset(self, fleet):
        assert self._onset_on_update_fraction(fleet, 0.0) == 1.0

    def test_full_hybrid_rarely_aligns(self, fleet):
        assert self._onset_on_update_fraction(fleet, 1.0) < 0.05

    def test_default_is_in_between(self, fleet):
        fraction = self._onset_on_update_fraction(
            fleet, BehaviorParams().hybrid_cloud_frac
        )
        assert 0.4 < fraction < 0.9


class TestContextCaches:
    def test_weight_vectors_cover_fleet(self, fleet):
        ctx = BehaviorContext(fleet, BehaviorParams(), seed=6)
        for category in ("pe", "android", "web"):
            assert len(ctx.detection_weights[category]) == len(fleet)
            assert len(ctx.churn_weights[category]) == len(fleet)
            assert len(ctx.fp_weights[category]) == len(fleet)
            assert ctx.churn_total[category] == pytest.approx(
                sum(ctx.churn_weights[category])
            )

    def test_rng_streams_keyed_by_sample(self, fleet):
        ctx = BehaviorContext(fleet, BehaviorParams(), seed=7)
        s1 = _sample("rng1")
        s2 = _sample("rng2")
        assert (ctx.plan_rng(s1).random()
                == random.Random(f"7:plan:{s1.sha256}").random())
        assert ctx.plan_rng(s1).random() != ctx.plan_rng(s2).random()
