"""reprolint full-repo wall-clock: the linter must stay cheap.

The self-check runs inside tier-1 (``tests/test_lint_selfcheck.py``) and
in every CI matrix cell, so the whole-package pass has a latency budget:
well under ~2 s for ``src/repro``.  This bench measures a full
``lint_paths`` pass (read + parse + all rules + the whole-program RPL005
table) over the shipped package and records it in the shared
``repro-bench/1`` results schema.

Dual mode, like the other benches:

* under pytest-benchmark (``pytest benchmarks/ --benchmark-only``) the
  pass is timed by the harness and the budget asserted;
* as a script (``python benchmarks/bench_lint.py``) it writes a schema'd
  ``BENCH_lint.json`` artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lint import default_target, lint_paths, render_json

try:  # pytest mode — absent when run as a plain script
    from conftest import run_once, say
except ImportError:  # pragma: no cover - script mode
    run_once = None

    def say(*args: object) -> None:
        print(*args)

#: Schema identifier for the benchmark artifact (shared across benches).
RESULTS_SCHEMA = "repro-bench/1"

#: Full-repo budget in seconds; generous for cold CI runners, an order
#: of magnitude above what a warm local pass takes.
DEFAULT_BUDGET_SECONDS = float(
    os.environ.get("REPRO_BENCH_LINT_BUDGET", "2.0"))

#: Timed repetitions in script mode (best-of, to shed FS cache noise).
DEFAULT_REPEATS = 3


def run_lint_bench(repeats: int = DEFAULT_REPEATS) -> dict:
    """Time full-package lint passes; returns the artifact payload."""
    target = default_target()
    walls = []
    result = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = lint_paths([target])
        walls.append(time.perf_counter() - started)
    best = min(walls)
    report_bytes = len(render_json(result).encode("utf-8"))
    return {
        "schema": RESULTS_SCHEMA,
        "suite": "lint",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "target": str(target),
        "budget_seconds": DEFAULT_BUDGET_SECONDS,
        "benchmarks": [{
            "name": "reprolint_full_repo",
            "files_checked": result.files_checked,
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "json_report_bytes": report_bytes,
            "wall_seconds": round(best, 4),
            "wall_seconds_all": [round(w, 4) for w in walls],
            "within_budget": best <= DEFAULT_BUDGET_SECONDS,
        }],
    }


def render(results: dict) -> None:
    entry = results["benchmarks"][0]
    verdict = ("within" if entry["within_budget"] else "OVER")
    say()
    say(f"reprolint full-repo bench ({entry['files_checked']} files, "
        f"{entry['findings']} findings, "
        f"{entry['suppressed']} suppressed)")
    say(f"  best of {len(entry['wall_seconds_all'])}: "
        f"{entry['wall_seconds']:.3f}s — {verdict} the "
        f"{results['budget_seconds']:.1f}s budget")


def test_lint_full_repo(benchmark):
    """pytest-benchmark entry point: one timed full-package pass."""
    target = default_target()
    result = benchmark(lambda: lint_paths([target]))
    assert result.findings == []
    assert result.files_checked > 50
    assert benchmark.stats.stats.min <= DEFAULT_BUDGET_SECONDS, (
        f"full-repo lint exceeded the {DEFAULT_BUDGET_SECONDS:.1f}s budget"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark a full-repo reprolint pass and write a "
                    "schema'd BENCH_lint.json.")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help=f"timed repetitions, best-of "
                             f"(default: {DEFAULT_REPEATS})")
    parser.add_argument("--output", default="BENCH_lint.json",
                        help="artifact path (default: BENCH_lint.json)")
    args = parser.parse_args(argv)

    results = run_lint_bench(args.repeats)
    render(results)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n",
                                 encoding="utf-8")
    say(f"\nwrote {args.output}")
    return 0 if results["benchmarks"][0]["within_budget"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
