"""Unit tests for descriptive statistics (repro.stats.descriptive)."""

import pytest

from repro.errors import InsufficientDataError
from repro.stats.descriptive import (
    boxplot_stats,
    mean,
    median,
    quantile,
    stdev,
)


class TestMoments:
    def test_mean(self):
        assert mean([1, 2, 3, 4]) == 2.5

    def test_mean_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            mean([])

    def test_stdev_matches_hand_computation(self):
        assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.1380899, abs=1e-6)

    def test_stdev_needs_two_points(self):
        with pytest.raises(InsufficientDataError):
            stdev([1])

    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 3, 2]) == 2.5


class TestQuantile:
    def test_endpoints(self):
        data = [1, 2, 3, 4, 5]
        assert quantile(data, 0.0) == 1
        assert quantile(data, 1.0) == 5

    def test_interpolation_matches_numpy(self):
        import numpy as np

        data = sorted([0.3, 1.7, 2.2, 9.9, 4.4, 3.3])
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert quantile(data, q) == pytest.approx(
                float(np.quantile(data, q))
            )

    def test_single_element(self):
        assert quantile([7], 0.5) == 7

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            quantile([1, 2], 1.5)

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            quantile([], 0.5)


class TestBoxplot:
    def test_simple_box(self):
        stats = boxplot_stats(range(1, 10))
        assert stats.median == 5
        assert stats.q1 == 3
        assert stats.q3 == 7
        assert stats.iqr == 4
        assert stats.outlier_count == 0
        assert stats.whisker_low == 1
        assert stats.whisker_high == 9

    def test_outlier_detection(self):
        data = list(range(1, 10)) + [1000]
        stats = boxplot_stats(data)
        assert stats.outlier_count == 1
        assert stats.whisker_high == 9

    def test_mean_included(self):
        stats = boxplot_stats([1, 2, 3])
        assert stats.mean == 2

    def test_count(self):
        assert boxplot_stats([5] * 17).count == 17

    def test_constant_data(self):
        stats = boxplot_stats([4, 4, 4, 4])
        assert stats.iqr == 0
        assert stats.whisker_low == stats.whisker_high == 4
        assert stats.outlier_count == 0

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            boxplot_stats([])

    def test_matches_matplotlib_convention(self):
        """Whiskers reach the most extreme inlier, not the fence itself."""
        data = [1, 2, 3, 4, 5, 6, 7, 8, 20]
        stats = boxplot_stats(data)
        # q1=3, q3=7, fence = 7 + 1.5*4 = 13 -> whisker at 8, 20 out.
        assert stats.whisker_high == 8
        assert stats.outlier_count == 1
