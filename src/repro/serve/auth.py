"""Tenants, API keys and quota tiers for the serving layer.

The measurement subject of the paper *is* an online scanning API with a
tiered quota model, and the repo already mirrors the account side in
:class:`repro.vt.api.APIKey` (free keys: 500 requests/day).  The serving
layer needs the richer published shape — the real free tier is **500
requests per day at a rate of 4 per minute** (SNIPPETS.md snippet 3
quotes the exact wording from a real client), while premium keys are
effectively uncapped — so tiers here carry both windows and the token
buckets in :mod:`repro.serve.ratelimit` enforce them.

A :class:`Tenant` is one API key bound to a tier; the
:class:`TenantRegistry` is the server's key table.  Authentication is the
real service's header convention (``x-apikey``): a missing key is 401,
an unknown key is 403 — distinguishable failures, mirroring how the real
API responds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: The real public free-tier quota: requests per day.
FREE_DAILY_QUOTA = 500

#: The real public free-tier rate: requests per minute.
FREE_PER_MINUTE = 4


@dataclass(frozen=True)
class TierLimits:
    """One quota class: rate and daily windows (``None`` = unlimited)."""

    name: str
    per_minute: int | None
    per_day: int | None

    @property
    def unlimited(self) -> bool:
        return self.per_minute is None and self.per_day is None


#: The public free tier: 500/day at 4/minute.
FREE_TIER = TierLimits("free", per_minute=FREE_PER_MINUTE,
                       per_day=FREE_DAILY_QUOTA)

#: The premium tier: uncapped, plus feed access.
PREMIUM_TIER = TierLimits("premium", per_minute=None, per_day=None)

TIERS: dict[str, TierLimits] = {
    FREE_TIER.name: FREE_TIER,
    PREMIUM_TIER.name: PREMIUM_TIER,
}


@dataclass(frozen=True)
class Tenant:
    """One API key bound to a quota tier."""

    key: str
    tier: TierLimits

    @property
    def premium(self) -> bool:
        """Whether the key may touch premium surfaces (the feed)."""
        return self.tier.name == PREMIUM_TIER.name


class TenantRegistry:
    """The server's API-key table."""

    def __init__(self) -> None:
        self._tenants: dict[str, Tenant] = {}

    def add(self, key: str, tier: str | TierLimits) -> Tenant:
        """Register one key; ``tier`` is a name (``free``/``premium``)
        or a :class:`TierLimits` for custom quota classes."""
        if not key:
            raise ConfigError("API key must be non-empty")
        if isinstance(tier, str):
            try:
                tier = TIERS[tier]
            except KeyError:
                raise ConfigError(
                    f"unknown tier {tier!r}; known tiers: "
                    f"{', '.join(sorted(TIERS))}") from None
        if key in self._tenants:
            raise ConfigError(f"duplicate API key {key!r}")
        tenant = Tenant(key=key, tier=tier)
        self._tenants[key] = tenant
        return tenant

    def add_spec(self, spec: str) -> Tenant:
        """Register from a ``KEY:TIER`` CLI spec (``mykey:free``)."""
        key, sep, tier = spec.partition(":")
        if not sep:
            raise ConfigError(
                f"bad API key spec {spec!r}: expected KEY:TIER")
        return self.add(key, tier)

    def lookup(self, key: str | None) -> Tenant | None:
        """The tenant for ``key``, or ``None`` if unknown/missing."""
        if key is None:
            return None
        return self._tenants.get(key)

    def __len__(self) -> int:
        return len(self._tenants)

    def tenants(self) -> list[Tenant]:
        """All tenants, sorted by key (deterministic listing)."""
        return [self._tenants[k] for k in sorted(self._tenants)]
