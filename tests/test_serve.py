"""Tests for the HTTP serving layer (repro.serve).

``handle_request`` is exercised socket-free for everything behavioural
(auth, quotas, routing, response bytes); one smoke test drives the real
``ThreadingHTTPServer`` over a loopback socket.  The rate limiter runs on
an injected fake clock throughout — no test sleeps.
"""

import json
import threading

import pytest

from repro.analysis.experiment import run_experiment
from repro.errors import ConfigError
from repro.serve import (
    FREE_TIER,
    PREMIUM_TIER,
    ReportServer,
    TenantRegistry,
    TierLimits,
)
from repro.serve.http import LATENCY_EDGES
from repro.serve.ratelimit import TenantLimiter
from repro.store import ReportStore
from repro.vt.feed import FeedArchive
from tests.conftest import make_report, make_sha


class FakeClock:
    """A settable monotonic clock for the limiter."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _tiny_store(block_format: str = "columnar") -> ReportStore:
    store = ReportStore(block_records=4, block_format=block_format)
    for i in range(6):
        sha = make_sha(f"serve{i}")
        for rep in range(3):
            store.ingest(make_report(
                sha=sha, scan_time=100 * rep + i,
                labels=[1] * rep + [0] * (5 - rep)))
    store.close()
    return store


@pytest.fixture()
def store(store_block_format):
    # The serving hot path runs against both block layouts: row decodes
    # records, columnar decodes arrays and materialises only the hit slot.
    return _tiny_store(store_block_format)


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def server(store, clock):
    tenants = TenantRegistry()
    tenants.add("free-key", "free")
    tenants.add("prem-key", "premium")
    archive = FeedArchive.from_store(store, retention_minutes=150)
    return ReportServer(store, tenants, archive, clock=clock)


def _get(server, path, key=None):
    headers = {} if key is None else {"x-apikey": key}
    return server.handle_request("GET", path, headers)


def _body(raw: bytes) -> dict:
    return json.loads(raw)


class TestAuth:
    def test_missing_key_is_401(self, server, store):
        sha = next(iter(store.samples()))
        status, body, _ = _get(server, f"/files/{sha}")
        assert status == 401
        assert _body(body)["error"]["code"] == "AuthenticationRequiredError"

    def test_unknown_key_is_403(self, server, store):
        sha = next(iter(store.samples()))
        status, body, _ = _get(server, f"/files/{sha}", key="nope")
        assert status == 403
        assert _body(body)["error"]["code"] == "WrongCredentialsError"

    def test_header_name_is_case_insensitive(self, server, store):
        sha = next(iter(store.samples()))
        status, _, _ = server.handle_request(
            "GET", f"/files/{sha}", {"X-Apikey": "prem-key"})
        assert status == 200

    def test_non_get_is_405(self, server, store):
        sha = next(iter(store.samples()))
        status, _, headers = server.handle_request(
            "POST", f"/files/{sha}", {"x-apikey": "prem-key"})
        assert status == 405
        assert headers["Allow"] == "GET"


class TestFileEndpoint:
    def test_latest_report_served(self, server, store):
        sha = next(iter(store.samples()))
        status, body, headers = _get(server, f"/files/{sha}", key="prem-key")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        doc = _body(body)
        assert doc["sha256"] == sha
        assert doc["scan_time"] == store.latest_report(sha).scan_time

    def test_unknown_hash_is_404(self, server):
        status, body, _ = _get(server, "/files/" + "0" * 64, key="prem-key")
        assert status == 404
        assert _body(body)["error"]["code"] == "NotFoundError"

    def test_malformed_hash_is_404(self, server):
        status, body, _ = _get(server, "/files/deadbeef", key="prem-key")
        assert status == 404

    def test_lookup_decodes_at_most_one_block_cold(self, server, store):
        """The acceptance criterion: a hot-hash request decodes ≤1 block
        on a cold cache (the pre-index server full-scanned the store)."""
        sha = next(iter(store.samples()))
        store.drop_caches()
        before = store.cache_stats().blocks_decoded
        status, _, _ = _get(server, f"/files/{sha}", key="prem-key")
        assert status == 200
        assert store.cache_stats().blocks_decoded - before <= 1

    def test_series_trajectory(self, server, store):
        sha = next(iter(store.samples()))
        status, body, _ = _get(server, f"/files/{sha}/series",
                               key="prem-key")
        assert status == 200
        doc = _body(body)
        assert doc["sha256"] == sha
        assert doc["count"] == 3
        times = [p["scan_time"] for p in doc["series"]]
        assert times == sorted(times)
        assert [p["positives"] for p in doc["series"]] == [0, 1, 2]


class TestRateLimiting:
    def test_free_fifth_request_in_a_minute_is_429(self, server, store):
        sha = next(iter(store.samples()))
        for _ in range(4):
            status, _, _ = _get(server, f"/files/{sha}", key="free-key")
            assert status == 200
        status, body, headers = _get(server, f"/files/{sha}", key="free-key")
        assert status == 429
        assert _body(body)["error"]["code"] == "QuotaExceededError"
        retry = int(headers["Retry-After"])
        assert retry >= 1
        assert retry <= 15  # one token refills in 60/4 s

    def test_retry_after_is_honest(self, server, store, clock):
        sha = next(iter(store.samples()))
        for _ in range(4):
            _get(server, f"/files/{sha}", key="free-key")
        _, _, headers = _get(server, f"/files/{sha}", key="free-key")
        clock.advance(int(headers["Retry-After"]))
        status, _, _ = _get(server, f"/files/{sha}", key="free-key")
        assert status == 200

    def test_premium_is_never_limited(self, server, store):
        sha = next(iter(store.samples()))
        for _ in range(50):
            status, _, _ = _get(server, f"/files/{sha}", key="prem-key")
            assert status == 200

    def test_refused_request_consumes_no_day_quota(self, clock):
        """Check-all-then-consume: a minute-window refusal must not
        drain the day bucket."""
        limiter = TenantLimiter(clock=clock)
        tenants = TenantRegistry()
        tenant = tenants.add("k", TierLimits("tiny", per_minute=1, per_day=2))
        assert limiter.check(tenant).allowed          # spends 1 of each
        refused = limiter.check(tenant)               # minute empty
        assert not refused.allowed
        assert limiter.remaining(tenant)["day"] == pytest.approx(1.0)
        clock.advance(60)                             # minute refills
        assert limiter.check(tenant).allowed          # day's last token
        worst = limiter.check(tenant)
        assert not worst.allowed
        # Both windows now refuse; the wait is the day window's (hours).
        assert worst.retry_after > 3600

    def test_hammer_single_tenant_admits_exactly_capacity(self):
        """Eight threads racing one tenant's bucket admit exactly
        ``capacity`` requests: the check and the consume happen under
        one lock at one clock instant, so concurrent callers can never
        double-spend a token (the regression this guards was a fresh
        clock read between check and consume minting extra admissions).
        """
        limiter = TenantLimiter(clock=lambda: 0.0)  # frozen: no refill
        tenants = TenantRegistry()
        tenant = tenants.add(
            "hammer", TierLimits("burst", per_minute=32, per_day=None))
        admitted = []
        barrier = threading.Barrier(8)

        def worker() -> None:
            barrier.wait()
            for _ in range(16):
                if limiter.check(tenant).allowed:
                    admitted.append(1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 32

    def test_limits_are_per_tenant(self, server, store):
        tenants = server.tenants
        tenants.add("free-2", "free")
        sha = next(iter(store.samples()))
        for _ in range(4):
            assert _get(server, f"/files/{sha}", key="free-key")[0] == 200
        assert _get(server, f"/files/{sha}", key="free-key")[0] == 429
        assert _get(server, f"/files/{sha}", key="free-2")[0] == 200

    def test_free_tier_matches_published_limits(self):
        assert FREE_TIER.per_minute == 4
        assert FREE_TIER.per_day == 500
        assert PREMIUM_TIER.unlimited


class TestFeedEndpoint:
    def test_premium_gets_batch(self, server, store):
        horizon = server.archive.horizon
        status, body, _ = _get(server, f"/feeds/files/{horizon}",
                               key="prem-key")
        assert status == 200
        doc = _body(body)
        assert doc["minute"] == horizon
        assert doc["count"] == len(doc["reports"]) > 0

    def test_free_key_is_403(self, server):
        status, body, _ = _get(server, "/feeds/files/100", key="free-key")
        assert status == 403
        assert _body(body)["error"]["code"] == "ForbiddenError"

    def test_expired_minute_is_structured_404(self, server):
        floor = server.archive.oldest_available
        assert floor > 0
        status, body, _ = _get(server, f"/feeds/files/{floor - 1}",
                               key="prem-key")
        assert status == 404
        err = _body(body)["error"]
        assert err["code"] == "ArchiveExpiredError"
        assert err["minute"] == floor - 1
        assert err["oldest_available"] == floor

    def test_boundary_minute_is_served(self, server):
        floor = server.archive.oldest_available
        status, _, _ = _get(server, f"/feeds/files/{floor}", key="prem-key")
        assert status == 200

    def test_no_archive_is_404(self, store, clock):
        tenants = TenantRegistry()
        tenants.add("p", "premium")
        bare = ReportServer(store, tenants, archive=None, clock=clock)
        status, body, _ = _get(bare, "/feeds/files/100", key="p")
        assert status == 404
        assert _body(body)["error"]["code"] == "NotFoundError"


class TestTenantRegistry:
    def test_spec_parsing(self):
        tenants = TenantRegistry()
        tenant = tenants.add_spec("abc:premium")
        assert tenant.key == "abc" and tenant.premium

    def test_bad_specs_rejected(self):
        tenants = TenantRegistry()
        with pytest.raises(ConfigError):
            tenants.add_spec("no-tier")
        with pytest.raises(ConfigError):
            tenants.add_spec("k:gold")
        with pytest.raises(ConfigError):
            tenants.add_spec(":free")

    def test_duplicate_key_rejected(self):
        tenants = TenantRegistry()
        tenants.add("k", "free")
        with pytest.raises(ConfigError):
            tenants.add("k", "premium")


class TestDeterministicResponses:
    def test_serial_and_parallel_stores_serve_identical_bytes(
            self, tiny_config, tiny_store):
        """The serving-layer face of the equivalence gate: digest-equal
        stores must serve byte-identical responses on every endpoint."""
        parallel = run_experiment(tiny_config, workers=2).store
        assert parallel.digest() == tiny_store.digest()

        def server_over(store):
            tenants = TenantRegistry()
            tenants.add("p", "premium")
            archive = FeedArchive.from_store(store)
            return ReportServer(store, tenants, archive,
                                clock=lambda: 0.0)

        a, b = server_over(tiny_store), server_over(parallel)
        shas = sorted(tiny_store.samples())[:10]
        paths = [f"/files/{sha}" for sha in shas]
        paths += [f"/files/{sha}/series" for sha in shas]
        horizon = a.archive.horizon
        paths += [f"/feeds/files/{m}"
                  for m in range(max(0, horizon - 3), horizon + 1)]
        paths += ["/files/" + "0" * 64, "/feeds/files/999999999"]
        for path in paths:
            ra = a.handle_request("GET", path, {"x-apikey": "p"})
            rb = b.handle_request("GET", path, {"x-apikey": "p"})
            assert ra == rb, path

    def test_response_bytes_are_canonical_json(self, server, store):
        sha = next(iter(store.samples()))
        _, body, _ = _get(server, f"/files/{sha}", key="prem-key")
        doc = _body(body)
        recanon = json.dumps(doc, sort_keys=True,
                             separators=(",", ":")).encode()
        assert body == recanon


class TestMetrics:
    def test_requests_and_rejections_counted(self, store, clock):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        tenants = TenantRegistry()
        tenants.add("p", "premium")
        srv = ReportServer(store, tenants, clock=clock, metrics=registry)
        sha = next(iter(store.samples()))
        _get(srv, f"/files/{sha}", key="p")
        _get(srv, f"/files/{sha}")                 # 401
        _get(srv, f"/files/{sha}", key="wrong")    # 403
        assert registry.counter("serve.requests",
                                endpoint="file", status=200).value == 1
        assert registry.counter("serve.rejected.auth").value == 2
        hist = registry.histogram(
            "serve.latency.seconds", edges=LATENCY_EDGES, endpoint="file")
        assert hist.count == 3


class TestSocketLayer:
    def test_loopback_round_trip(self, store):
        import urllib.error
        import urllib.request

        tenants = TenantRegistry()
        tenants.add("p", "premium")
        srv = ReportServer(store, tenants,
                           archive=FeedArchive.from_store(store), port=0)
        host, port = srv.address
        srv.start()
        try:
            sha = next(iter(store.samples()))
            req = urllib.request.Request(
                f"http://{host}:{port}/files/{sha}",
                headers={"x-apikey": "p"})
            with urllib.request.urlopen(req, timeout=10) as resp:
                assert resp.status == 200
                over_socket = resp.read()
            direct = srv.handle_request(
                "GET", f"/files/{sha}", {"x-apikey": "p"})[1]
            assert over_socket == direct
            bad = urllib.request.Request(f"http://{host}:{port}/files/{sha}")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(bad, timeout=10)
            assert excinfo.value.code == 401
        finally:
            srv.shutdown()

    def test_concurrent_requests_are_consistent(self, store):
        """N threads hammering one sample all read the same bytes (the
        store lock keeps the LRU safe under ThreadingHTTPServer)."""
        import threading
        import urllib.request

        tenants = TenantRegistry()
        tenants.add("p", "premium")
        srv = ReportServer(store, tenants, port=0)
        host, port = srv.address
        srv.start()
        sha = next(iter(store.samples()))
        expected = srv.handle_request(
            "GET", f"/files/{sha}", {"x-apikey": "p"})[1]
        results: list[bytes] = []
        errors: list[Exception] = []

        def hit():
            try:
                req = urllib.request.Request(
                    f"http://{host}:{port}/files/{sha}",
                    headers={"x-apikey": "p"})
                with urllib.request.urlopen(req, timeout=10) as resp:
                    results.append(resp.read())
            except Exception as exc:  # collected for the assert below
                errors.append(exc)

        threads = [threading.Thread(target=hit) for _ in range(8)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        finally:
            srv.shutdown()
        assert not errors
        assert len(results) == 8
        assert all(r == expected for r in results)
