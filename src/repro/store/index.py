"""The persistent point-lookup index: sha256 → report addresses.

The store has always kept an in-memory per-sample index (the grouping
structure behind every per-sample analysis), but it was rebuilt on every
:meth:`~repro.store.reportstore.ReportStore.load` by decompressing *every
block* and peeking every record — fine for batch analyses that stream the
whole store anyway, hostile to a serving layer whose working set is a few
hot hashes.

This module makes the index a first-class persisted artefact:

* each index entry is ``(month, block, slot, scan_time)`` — the block
  address the store already used, plus the report's scan minute, so the
  *latest* report of a sample can be located without decoding anything;
* :func:`encode_index` / :func:`decode_index` round-trip the whole index
  (addresses, scan times, and the per-sample metadata the paper stores
  separately) through a compact zlib-compressed binary section that
  ``save()`` embeds in the store file (format v2) right after the JSON
  header;
* a v2 ``load()`` therefore touches **zero** blocks, and a point lookup
  (:meth:`~repro.store.reportstore.ReportStore.latest_report`) decodes at
  most one — the property the ``repro.serve`` front-end and its QPS
  benchmark are built on.

Old (v1) files simply lack the section; the store falls back to building
the index lazily from record peeks on first per-sample access.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import CorruptRecordError

#: Magic prefix of an encoded (uncompressed) index section.
INDEX_MAGIC = b"RPRIDX01"

#: Schema number stored in the file header next to the section.
INDEX_FORMAT = 1

#: One index entry: (month, block, slot, scan_time).
IndexEntry = tuple[int, int, int, int]

#: Per-sample fixed header: sha256 (raw), file-type length, freshness
#: flag, entry count.
_SAMPLE_HEADER = struct.Struct("<32sHBI")

#: One packed entry: month, block, slot, scan_time.
_ENTRY = struct.Struct("<iIIq")

#: zlib level for the index section.  Entries are highly repetitive
#: (runs of near-identical addresses), so cheap compression wins big.
_ZLIB_LEVEL = 6


def encode_index(
    index: dict[str, list[IndexEntry]],
    sample_meta: dict[str, tuple[str, bool]],
) -> bytes:
    """Pack the per-sample index into one compressed binary section.

    Samples are written in the mapping's insertion order — first-ingest
    order — which :func:`decode_index` preserves, so a loaded store's
    :meth:`~repro.store.reportstore.ReportStore.samples` iteration order
    matches the store that saved it.
    """
    parts = [INDEX_MAGIC, struct.pack("<I", len(index))]
    for sha, entries in index.items():
        ftype, fresh = sample_meta[sha]
        ftype_bytes = ftype.encode("utf-8")
        parts.append(_SAMPLE_HEADER.pack(
            bytes.fromhex(sha), len(ftype_bytes), 1 if fresh else 0,
            len(entries)))
        parts.append(ftype_bytes)
        for month, block, slot, scan_time in entries:
            parts.append(_ENTRY.pack(month, block, slot, scan_time))
    return zlib.compress(b"".join(parts), _ZLIB_LEVEL)


def decode_index(
    payload: bytes,
) -> tuple[dict[str, list[IndexEntry]], dict[str, tuple[str, bool]]]:
    """Unpack a section written by :func:`encode_index`.

    Returns ``(index, sample_meta)`` with samples in the order they were
    encoded.  Raises :class:`~repro.errors.CorruptRecordError` on any
    structural damage — a truncated or bit-flipped index must never load
    as a silently smaller one.
    """
    try:
        raw = zlib.decompress(payload)
    except zlib.error as exc:
        raise CorruptRecordError(f"undecodable store index: {exc}") from exc
    if raw[:len(INDEX_MAGIC)] != INDEX_MAGIC:
        raise CorruptRecordError("bad store index magic")
    offset = len(INDEX_MAGIC)
    try:
        (n_samples,) = struct.unpack_from("<I", raw, offset)
        offset += 4
        index: dict[str, list[IndexEntry]] = {}
        meta: dict[str, tuple[str, bool]] = {}
        for _ in range(n_samples):
            sha_raw, ftype_len, fresh, n_entries = _SAMPLE_HEADER.unpack_from(
                raw, offset)
            offset += _SAMPLE_HEADER.size
            ftype = raw[offset:offset + ftype_len].decode("utf-8")
            if len(ftype.encode("utf-8")) != ftype_len:
                raise CorruptRecordError("truncated store index")
            offset += ftype_len
            entries: list[IndexEntry] = []
            for _ in range(n_entries):
                entries.append(_ENTRY.unpack_from(raw, offset))
                offset += _ENTRY.size
            sha = sha_raw.hex()
            index[sha] = entries
            meta[sha] = (ftype, fresh == 1)
    except struct.error as exc:
        raise CorruptRecordError(f"truncated store index: {exc}") from exc
    if offset != len(raw):
        raise CorruptRecordError(
            f"store index has {len(raw) - offset} trailing bytes")
    return index, meta


def sample_ranks(index: dict[str, list[IndexEntry]]) -> dict[str, int]:
    """``sha256 → first-ingest rank`` for every indexed sample.

    The mapping's insertion order *is* first-ingest order (and survives
    a save/load round trip — :func:`encode_index` writes samples in that
    order).  The columnar series kernels use these ranks to reproduce
    the row path's sample ordering bit-for-bit.
    """
    return {sha: rank for rank, sha in enumerate(index)}


def latest_entry(entries: list[IndexEntry]) -> IndexEntry:
    """The entry of a sample's *latest* report.

    Latest means maximal scan time; among duplicates of the same minute
    (possible via plain :meth:`~repro.store.reportstore.ReportStore.ingest`,
    never via ``ingest_unique``) the one ingested last wins — the same
    report a time-sorted :meth:`report_series` ends with, since the sort
    is stable over ingest order.
    """
    best = entries[0]
    for entry in entries[1:]:
        if entry[3] >= best[3]:
            best = entry
    return best
