"""Unit tests for the engine fleet (repro.vt.engines)."""

import pytest

from repro.errors import ConfigError
from repro.vt import clock
from repro.vt.engines import (
    CopyRule,
    Engine,
    EngineFleet,
    default_fleet,
)


class TestEngineValidation:
    def test_activity_bounds(self):
        with pytest.raises(ConfigError):
            Engine("X", activity=0.0)
        with pytest.raises(ConfigError):
            Engine("X", activity=1.5)

    def test_negative_sensitivity_rejected(self):
        with pytest.raises(ConfigError):
            Engine("X", sensitivity=-1)

    def test_update_interval_positive(self):
        with pytest.raises(ConfigError):
            Engine("X", update_interval_days=0)

    def test_unknown_affinity_category_rejected(self):
        with pytest.raises(ConfigError):
            Engine("X", affinity={"bogus": 1.0})

    def test_affinity_defaults_to_one(self):
        e = Engine("X", affinity={"pe": 2.0})
        assert e.affinity_for("pe") == 2.0
        assert e.affinity_for("elf") == 1.0

    def test_churn_for_combines_base_and_affinity(self):
        e = Engine("X", churn=2.0, churn_affinity={"elf": 3.0})
        assert e.churn_for("elf") == 6.0
        assert e.churn_for("pe") == 2.0


class TestCopyRule:
    def test_applies_everywhere_by_default(self):
        rule = CopyRule("Leader")
        assert rule.applies_to("Win32 EXE", "pe")
        assert rule.applies_to("GZIP", "archive")

    def test_category_restriction(self):
        rule = CopyRule("Leader", categories=frozenset({"pe"}))
        assert rule.applies_to("Win32 EXE", "pe")
        assert not rule.applies_to("GZIP", "archive")

    def test_file_type_restriction_overrides_categories(self):
        rule = CopyRule("Leader", file_types=frozenset({"GZIP"}),
                        categories=frozenset({"pe"}))
        assert rule.applies_to("GZIP", "archive")
        assert not rule.applies_to("ZIP", "archive")


class TestFleetConstruction:
    def test_default_fleet_has_70_engines(self, fleet):
        assert len(fleet) == 70

    def test_paper_engine_names_present(self, fleet):
        for name in ("Avast", "AVG", "Paloalto", "APEX", "BitDefender",
                     "MicroWorld-eScan", "GData", "FireEye", "MAX",
                     "ALYac", "Ad-Aware", "Emsisoft", "Arcabit",
                     "F-Secure", "Lionic", "Jiangmin", "AhnLab",
                     "Microsoft", "Webroot", "CrowdStrike", "Cyren",
                     "Fortinet", "Cynet", "Avira", "VirIT",
                     "K7GW", "K7AntiVirus", "TrendMicro",
                     "TrendMicro-HouseCall", "F-Prot", "Babable"):
            assert name in fleet.index, name

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            EngineFleet([Engine("A"), Engine("A")])

    def test_unknown_copy_leader_rejected(self):
        with pytest.raises(ConfigError):
            EngineFleet([Engine("A", copies=CopyRule("Ghost"))])

    def test_copy_chain_depth_capped(self):
        engines = [
            Engine("A"),
            Engine("B", copies=CopyRule("A")),
            Engine("C", copies=CopyRule("B")),
        ]
        with pytest.raises(ConfigError):
            EngineFleet(engines)

    def test_getitem_by_name_and_index(self, fleet):
        assert fleet["Avast"].name == "Avast"
        assert fleet[fleet.index["Avast"]].name == "Avast"

    def test_decision_order_leaders_first(self, fleet):
        seen = set()
        for idx in fleet.decision_order:
            engine = fleet.engines[idx]
            if engine.copies is not None:
                assert fleet.index[engine.copies.leader] in seen
            seen.add(idx)

    def test_bitdefender_oem_family_copies(self, fleet):
        for follower in ("MicroWorld-eScan", "GData", "FireEye", "MAX",
                         "ALYac", "Ad-Aware", "Emsisoft"):
            assert fleet[follower].copies.leader == "BitDefender"

    def test_lionic_virit_rule_is_gzip_only(self, fleet):
        rule = fleet["Lionic"].copies
        assert rule.leader == "VirIT"
        assert rule.file_types == frozenset({"GZIP"})


class TestSchedules:
    def test_update_schedule_covers_backfill_and_window(self, fleet):
        schedule = fleet.update_schedule("Kaspersky")
        assert schedule[0] < 0
        assert schedule[-1] >= clock.WINDOW_MINUTES

    def test_schedule_sorted(self, fleet):
        schedule = fleet.update_schedule("Sophos")
        assert schedule == sorted(schedule)

    def test_version_monotone_in_time(self, fleet):
        idx = fleet.index["Sophos"]
        versions = [fleet.version_at(idx, t)
                    for t in range(0, clock.WINDOW_MINUTES, 50_000)]
        assert versions == sorted(versions)

    def test_visible_versions_sparser_than_db_pushes(self, fleet):
        # Sophos pushes DB deltas every ~1.5 days but only bumps its
        # visible version roughly monthly (the §5.5 distinction).
        db = fleet.update_schedule("Sophos")
        visible = fleet.version_schedule("Sophos")
        assert len(visible) < len(db) / 5

    def test_visible_schedule_subset_of_db_schedule(self, fleet):
        db = set(fleet.update_schedule("DrWeb"))
        assert set(fleet.version_schedule("DrWeb")) <= db

    def test_next_update_after_is_strictly_later(self, fleet):
        idx = fleet.index["Avast"]
        t = 10_000
        nxt = fleet.next_update_after(idx, t)
        assert nxt > t

    def test_next_update_after_schedule_horizon(self, fleet):
        idx = fleet.index["Avast"]
        far = clock.WINDOW_MINUTES + fleet.SCHEDULE_OVERRUN + 10**9
        assert fleet.next_update_after(idx, far) == far

    def test_schedules_deterministic_per_seed(self):
        a = default_fleet(seed=5).update_schedule("Avast")
        b = default_fleet(seed=5).update_schedule("Avast")
        c = default_fleet(seed=6).update_schedule("Avast")
        assert a == b
        assert a != c


class TestDetectionWeights:
    def test_mobile_engine_is_android_specialist(self, fleet):
        weights_android = fleet.detection_weights("android")
        weights_pe = fleet.detection_weights("pe")
        idx = fleet.index["Avast-Mobile"]
        assert weights_android[idx] > 10 * weights_pe[idx]

    def test_edr_engines_are_pe_only(self, fleet):
        for name in ("Paloalto", "APEX", "Webroot", "CrowdStrike"):
            idx = fleet.index[name]
            assert fleet.detection_weights("pe")[idx] > 0.3
            assert fleet.detection_weights("web")[idx] < 0.05

    def test_weights_length_matches_fleet(self, fleet):
        assert len(fleet.detection_weights("pe")) == 70


class TestStabilityProfiles:
    def test_flippy_engines_have_high_churn(self, fleet):
        for name in ("Arcabit", "F-Secure", "Lionic"):
            assert fleet[name].churn >= 2.0

    def test_stable_engines_have_low_churn(self, fleet):
        for name in ("Jiangmin", "AhnLab"):
            assert fleet[name].churn <= 0.3

    def test_arcabit_elf_churn_dominates_its_android_churn(self, fleet):
        arcabit = fleet["Arcabit"]
        assert arcabit.churn_for("elf") > 50 * arcabit.churn_for("android")
