"""Unit tests for the VirusTotal service simulator (repro.vt.service)."""

import pytest

from repro.errors import NotFoundError
from repro.vt import clock
from repro.vt.samples import Sample, sha256_of
from repro.vt.service import VirusTotalService


@pytest.fixture()
def service():
    return VirusTotalService(seed=3)


def _sample(token: str = "svc", malicious: bool = True) -> Sample:
    return Sample(
        sha256=sha256_of(token),
        file_type="Win32 EXE",
        malicious=malicious,
        first_seen=clock.minutes(days=5),
    )


class TestRegistry:
    def test_register_and_lookup(self, service):
        s = _sample()
        service.register(s)
        assert service.known(s.sha256)
        assert service.get_sample(s.sha256) is s

    def test_unknown_hash_raises(self, service):
        with pytest.raises(NotFoundError):
            service.get_sample(sha256_of("ghost"))

    def test_samples_iterates_registry(self, service):
        service.register(_sample("a"))
        service.register(_sample("b"))
        assert len(list(service.samples())) == 2


class TestAnalysis:
    def test_upload_generates_report(self, service):
        s = _sample()
        report = service.upload(s, s.first_seen)
        assert report.sha256 == s.sha256
        assert report.file_type == "Win32 EXE"
        assert len(report.labels) == 70
        assert 0 <= report.positives <= report.total <= 70

    def test_rescan_requires_known_sample(self, service):
        with pytest.raises(NotFoundError):
            service.rescan(sha256_of("ghost"), 100)

    def test_report_returns_latest_without_new_analysis(self, service):
        s = _sample()
        first = service.upload(s, s.first_seen)
        generated = service.reports_generated
        got = service.report(s.sha256)
        assert got == first
        assert service.reports_generated == generated

    def test_report_without_analysis_raises(self, service):
        s = _sample()
        service.register(s)
        with pytest.raises(NotFoundError):
            service.report(s.sha256)

    def test_positives_counts_malicious_labels(self, service):
        s = _sample()
        report = service.upload(s, s.first_seen + clock.minutes(days=400))
        labels = report.engine_labels()
        assert report.positives == sum(1 for v in labels if v == 1)
        assert report.total == sum(1 for v in labels if v != -1)

    def test_malicious_sample_eventually_detected(self, service):
        s = _sample("verymal")
        late = s.first_seen + clock.minutes(days=400)
        report = service.upload(s, late)
        assert report.positives > 0

    def test_benign_sample_mostly_zero(self, service):
        ranks = []
        for i in range(30):
            s = _sample(f"ben{i}", malicious=False)
            ranks.append(service.upload(s, s.first_seen).positives)
        assert sum(1 for r in ranks if r == 0) >= 25

    def test_listener_receives_each_report(self, service):
        seen = []
        service.add_listener(seen.append)
        s = _sample()
        service.upload(s, s.first_seen)
        service.rescan(s.sha256, s.first_seen + 100)
        assert len(seen) == 2
        service.remove_listener(seen.append)
        service.rescan(s.sha256, s.first_seen + 200)
        assert len(seen) == 2

    def test_scans_are_deterministic_given_schedule(self):
        def run():
            service = VirusTotalService(seed=9)
            s = _sample("det")
            out = [service.upload(s, s.first_seen).positives]
            for d in (3, 9, 30):
                out.append(
                    service.rescan(
                        s.sha256, s.first_seen + clock.minutes(days=d)
                    ).positives
                )
            return out

        assert run() == run()


class TestTable1Semantics:
    """The paper's Table 1: field update rules per API operation."""

    def test_upload_updates_all_three_fields(self, service):
        s = _sample()
        t1 = s.first_seen
        report = service.upload(s, t1)
        assert report.times_submitted == 1
        assert report.last_submission_date == t1
        assert report.last_analysis_date == t1

        t2 = t1 + clock.minutes(days=2)
        report2 = service.upload(s.sha256, t2)
        assert report2.times_submitted == 2
        assert report2.last_submission_date == t2
        assert report2.last_analysis_date == t2

    def test_rescan_updates_only_analysis_date(self, service):
        s = _sample()
        t1 = s.first_seen
        service.upload(s, t1)
        t2 = t1 + clock.minutes(days=3)
        report = service.rescan(s.sha256, t2)
        assert report.last_analysis_date == t2
        assert report.last_submission_date == t1  # unchanged
        assert report.times_submitted == 1  # unchanged

    def test_report_changes_nothing(self, service):
        s = _sample()
        t1 = s.first_seen
        uploaded = service.upload(s, t1)
        fetched = service.report(s.sha256)
        assert fetched.last_analysis_date == uploaded.last_analysis_date
        assert fetched.last_submission_date == uploaded.last_submission_date
        assert fetched.times_submitted == uploaded.times_submitted

    def test_first_submission_date_preserved(self, service):
        s = _sample()
        service.upload(s, s.first_seen)
        later = service.rescan(s.sha256, s.first_seen + 10_000)
        assert later.first_submission_date == s.first_seen
